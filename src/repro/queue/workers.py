"""Worker pool: N threads draining a :class:`~repro.queue.queue.JobQueue`.

Each worker loops pop → handle; the handler (normally
:meth:`~repro.queue.manager.JobManager._run_job`) owns all lifecycle
bookkeeping and failure isolation, so a worker thread itself never dies
on a job failure — a defensive catch keeps the thread alive (and counts
the event) even if the handler has a bug.  Compilation releases no GIL,
but the shared :class:`~repro.api.session.Session` compiles unlocked
with single-flight dedup, so threads are exactly the right weight here:
they interleave job batches fairly and share both cache tiers.

Shutdown is graceful: closing the queue wakes every blocked worker, each
exits on the ``None`` sentinel, and :meth:`WorkerPool.close` joins them.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

from repro.exceptions import ServiceError
from repro.queue.jobs import QueuedJob
from repro.queue.queue import JobQueue


class WorkerPool:
    """Drains a job queue through a fixed set of daemon threads.

    Args:
        handler: Called with each popped :class:`QueuedJob`; must not
            raise (failures belong inside the job record).
        queue: The queue to drain.
        workers: Thread count; at least 1.
        name: Thread-name prefix (``"<name>-worker-<i>"``), for
            debuggability of stuck pools.
    """

    def __init__(self, handler: Callable[[QueuedJob], None],
                 queue: JobQueue, workers: int = 2,
                 name: str = "repro") -> None:
        if workers < 1:
            raise ServiceError(f"worker pool needs >= 1 worker, "
                               f"got {workers}")
        self._handler = handler
        self._queue = queue
        self._lock = threading.Lock()
        self._busy = 0
        self.handler_errors = 0
        self._threads: List[threading.Thread] = [
            threading.Thread(target=self._loop, daemon=True,
                             name=f"{name}-worker-{index}")
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            job = self._queue.pop()
            if job is None:  # queue closed and drained
                return
            with self._lock:
                self._busy += 1
            try:
                self._handler(job)
            except Exception:  # pragma: no cover - handler contract bug
                with self._lock:
                    self.handler_errors += 1
            finally:
                with self._lock:
                    self._busy -= 1

    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Configured thread count."""
        return len(self._threads)

    @property
    def busy(self) -> int:
        """Threads currently inside the handler."""
        with self._lock:
            return self._busy

    @property
    def alive(self) -> int:
        """Threads still running (drops to 0 after a clean close)."""
        return sum(1 for thread in self._threads if thread.is_alive())

    def utilization(self) -> float:
        """Busy fraction in [0, 1] — the `/stats` saturation signal."""
        return self.busy / len(self._threads)

    def close(self, timeout: Optional[float] = 10.0) -> bool:
        """Join every worker; the queue must already be closed.

        Returns True when all threads exited within ``timeout``.
        """
        if not self._queue.closed:
            self._queue.close()
        deadline_ok = True
        for thread in self._threads:
            thread.join(timeout)
            deadline_ok = deadline_ok and not thread.is_alive()
        return deadline_ok

    def stats(self) -> dict:
        """JSON-compatible pool telemetry."""
        return {
            "workers": self.workers,
            "busy": self.busy,
            "alive": self.alive,
            "utilization": self.utilization(),
            "handler_errors": self.handler_errors,
        }

    def __repr__(self) -> str:
        return (f"WorkerPool(workers={self.workers}, busy={self.busy}, "
                f"alive={self.alive})")
