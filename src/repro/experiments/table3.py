"""Table III: NISQ benchmark compilation results.

For every small NISQ benchmark and every policy, report gate count
(excluding router swaps), qubit footprint, circuit depth and swap count —
the four columns of Table III — on a 2-D lattice machine of at most
~25 physical qubits, with Toffolis decomposed into Clifford+T.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.api import MachineSpec, Session, SweepSpec
from repro.core.result import CompilationResult
from repro.experiments.runner import ExperimentResult, get_session
from repro.workloads.registry import NISQ_BENCHMARKS

POLICIES: Sequence[str] = ("lazy", "eager", "square")


def run(benchmarks: Sequence[str] = tuple(NISQ_BENCHMARKS),
        policies: Sequence[str] = POLICIES,
        grid_rows: int = 5, grid_cols: int = 5,
        session: Optional[Session] = None) -> ExperimentResult:
    """Compile every NISQ benchmark under every policy on one lattice."""
    session = get_session(session)
    spec = SweepSpec(
        benchmarks=tuple(benchmarks),
        machines=(MachineSpec.nisq_grid(grid_rows, grid_cols),),
        policies=tuple(policies),
        config_overrides={"decompose_toffoli": True},
    )
    sweep = session.run(spec)

    rows = []
    results: Dict[str, Dict[str, CompilationResult]] = {}
    for entry in sweep:
        result = entry.result
        rows.append({
            "benchmark": entry.job.benchmark,
            "policy": entry.job.policy_label,
            "gates": result.gate_count,
            "qubits": result.num_qubits_used,
            "depth": result.circuit_depth,
            "swaps": result.swap_count,
        })
        results.setdefault(entry.job.benchmark, {})[entry.job.policy_label] = result
    experiment = ExperimentResult(name="table3", rows=rows)
    experiment.extras["results"] = results
    return experiment


def format_report(experiment: ExperimentResult) -> str:
    """Text rendering in the layout of Table III."""
    from repro.analysis.report import format_comparison

    return format_comparison(
        "Table III: NISQ benchmarks compilation results",
        experiment.rows,
        columns=["benchmark", "policy", "gates", "qubits", "depth", "swaps"],
    )
