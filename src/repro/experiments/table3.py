"""Table III: NISQ benchmark compilation results.

For every small NISQ benchmark and every policy, report gate count
(excluding router swaps), qubit footprint, circuit depth and swap count —
the four columns of Table III — on a 2-D lattice machine of at most
~25 physical qubits, with Toffolis decomposed into Clifford+T.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.arch.nisq import NISQMachine
from repro.core.result import CompilationResult
from repro.experiments.runner import ExperimentResult, compile_on_machine
from repro.workloads.registry import NISQ_BENCHMARKS, load_benchmark

POLICIES: Sequence[str] = ("lazy", "eager", "square")


def run(benchmarks: Sequence[str] = tuple(NISQ_BENCHMARKS),
        policies: Sequence[str] = POLICIES,
        grid_rows: int = 5, grid_cols: int = 5) -> ExperimentResult:
    """Compile every NISQ benchmark under every policy on one lattice."""
    rows = []
    results: Dict[str, Dict[str, CompilationResult]] = {}
    for name in benchmarks:
        program = load_benchmark(name)
        per_policy: Dict[str, CompilationResult] = {}
        for policy in policies:
            machine = NISQMachine.grid(grid_rows, grid_cols)
            result = compile_on_machine(program, machine, policy,
                                        decompose_toffoli=True)
            per_policy[policy] = result
            rows.append({
                "benchmark": name,
                "policy": policy,
                "gates": result.gate_count,
                "qubits": result.num_qubits_used,
                "depth": result.circuit_depth,
                "swaps": result.swap_count,
            })
        results[name] = per_policy
    experiment = ExperimentResult(name="table3", rows=rows)
    experiment.extras["results"] = results
    return experiment


def format_report(experiment: ExperimentResult) -> str:
    """Text rendering in the layout of Table III."""
    from repro.analysis.report import format_comparison

    return format_comparison(
        "Table III: NISQ benchmarks compilation results",
        experiment.rows,
        columns=["benchmark", "policy", "gates", "qubits", "depth", "swaps"],
    )
