"""Figure 5: locality changes the preferred reclamation strategy.

The Belle synthetic benchmark prefers the Eager strategy on a 2-D lattice
machine (where swaps make qubit-area expansion expensive) but the Lazy
strategy on a fully-connected machine (where uncomputation gates buy
nothing).  This experiment compiles Belle under Eager / Lazy / SQUARE on
both machines and reports the active quantum volume of each combination.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.api import MachineSpec, Session, SweepSpec
from repro.experiments.runner import ExperimentResult, get_session

POLICIES: Sequence[str] = ("eager", "lazy", "square")


def run(benchmark: str = "belle-s", lattice_qubits: int = 25,
        policies: Sequence[str] = POLICIES,
        session: Optional[Session] = None) -> ExperimentResult:
    """Compare reclamation strategies on lattice vs fully-connected machines."""
    session = get_session(session)
    lattice = MachineSpec.nisq(lattice_qubits)
    full = MachineSpec.nisq_full(lattice_qubits)
    spec = SweepSpec(
        benchmarks=(benchmark,),
        machines=(lattice, full),
        policies=tuple(policies),
        config_overrides={"decompose_toffoli": True},
    )
    sweep = session.run(spec)

    rows = []
    aqv: Dict[str, Dict[str, int]] = {"lattice": {}, "fully-connected": {}}
    for policy in policies:
        result_lattice = sweep.get(policy=policy, machine=lattice)
        result_full = sweep.get(policy=policy, machine=full)
        aqv["lattice"][policy] = result_lattice.active_quantum_volume
        aqv["fully-connected"][policy] = result_full.active_quantum_volume
        rows.append({
            "policy": policy,
            "lattice AQV": result_lattice.active_quantum_volume,
            "fully-connected AQV": result_full.active_quantum_volume,
            "lattice swaps": result_lattice.swap_count,
        })

    def preferred(machine_kind: str) -> str:
        candidates = {p: aqv[machine_kind][p] for p in ("eager", "lazy")
                      if p in aqv[machine_kind]}
        return min(candidates, key=candidates.get) if candidates else ""

    experiment = ExperimentResult(name="figure5", rows=rows)
    experiment.extras["aqv"] = aqv
    experiment.extras["preferred_on_lattice"] = preferred("lattice")
    experiment.extras["preferred_on_full"] = preferred("fully-connected")
    return experiment


def format_report(experiment: ExperimentResult) -> str:
    """Text rendering including the preferred-strategy summary."""
    from repro.analysis.report import format_comparison

    text = format_comparison(
        "Figure 5: Belle AQV on lattice vs fully-connected machines",
        experiment.rows,
        columns=["policy", "lattice AQV", "fully-connected AQV", "lattice swaps"],
    )
    text += (
        f"preferred baseline on lattice: {experiment.extras['preferred_on_lattice']}\n"
        f"preferred baseline on fully-connected: "
        f"{experiment.extras['preferred_on_full']}\n"
    )
    return text
