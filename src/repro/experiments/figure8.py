"""Figure 8: impact of SQUARE on NISQ applications.

* 8(a) — active quantum volume of every NISQ benchmark under Lazy, Eager,
  SQUARE(LAA only) and full SQUARE;
* 8(b) — success rate from the worst-case analytical model;
* 8(c) — total variation distance from Monte-Carlo noise simulation.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.api import MachineSpec, Session, SweepSpec
from repro.core.result import CompilationResult
from repro.experiments.runner import ExperimentResult, get_session
from repro.noise.analytical import success_rates
from repro.noise.models import NoiseModel
from repro.noise.monte_carlo import MonteCarloSimulator, tvd_from_ideal
from repro.workloads.registry import NISQ_BENCHMARKS

AQV_POLICIES: Sequence[str] = ("lazy", "eager", "square-laa", "square")
NOISE_POLICIES: Sequence[str] = ("lazy", "eager", "square")


def _compile_suites(session: Session, benchmarks: Sequence[str],
                    policies: Sequence[str], grid_rows: int, grid_cols: int,
                    decompose: bool, record: bool = False
                    ) -> Dict[str, Dict[str, CompilationResult]]:
    """One suite per benchmark, submitted as a single sweep so a parallel
    session overlaps the whole benchmark x policy grid."""
    spec = SweepSpec(
        benchmarks=tuple(benchmarks),
        machines=(MachineSpec.nisq_grid(grid_rows, grid_cols),),
        policies=tuple(policies),
        config_overrides={"decompose_toffoli": decompose,
                          "record_schedule": record},
    )
    sweep = session.run(spec)
    return {name: sweep.suite(benchmark=name) for name in benchmarks}


def run_aqv(benchmarks: Sequence[str] = tuple(NISQ_BENCHMARKS),
            policies: Sequence[str] = AQV_POLICIES,
            grid_rows: int = 5, grid_cols: int = 5,
            session: Optional[Session] = None) -> ExperimentResult:
    """Figure 8(a): AQV per benchmark per policy."""
    session = get_session(session)
    suites = _compile_suites(session, benchmarks, policies, grid_rows,
                             grid_cols, decompose=True)
    rows = []
    for name in benchmarks:
        suite = suites[name]
        row: Dict[str, object] = {"benchmark": name}
        for policy in policies:
            row[policy] = suite[policy].active_quantum_volume
        rows.append(row)
    return ExperimentResult(name="figure8a", rows=rows)


def run_success(benchmarks: Sequence[str] = tuple(NISQ_BENCHMARKS),
                policies: Sequence[str] = NOISE_POLICIES,
                grid_rows: int = 5, grid_cols: int = 5,
                noise_model: Optional[NoiseModel] = None,
                session: Optional[Session] = None) -> ExperimentResult:
    """Figure 8(b): worst-case analytical success rate per benchmark."""
    session = get_session(session)
    suites = _compile_suites(session, benchmarks, policies, grid_rows,
                             grid_cols, decompose=True)
    rows = []
    improvements = {"vs_eager": [], "vs_lazy": []}
    for name in benchmarks:
        rates = success_rates(suites[name], noise_model)
        row: Dict[str, object] = {"benchmark": name}
        row.update({policy: rates[policy] for policy in policies})
        rows.append(row)
        if rates.get("eager"):
            improvements["vs_eager"].append(rates["square"] / rates["eager"])
        if rates.get("lazy"):
            improvements["vs_lazy"].append(rates["square"] / rates["lazy"])
    experiment = ExperimentResult(name="figure8b", rows=rows)
    for key, values in improvements.items():
        experiment.extras[f"mean_improvement_{key}"] = (
            sum(values) / len(values) if values else 0.0
        )
    return experiment


def run_noise(benchmarks: Sequence[str] = tuple(NISQ_BENCHMARKS),
              policies: Sequence[str] = NOISE_POLICIES,
              grid_rows: int = 5, grid_cols: int = 5,
              shots: int = 2048, seed: int = 2020,
              noise_model: Optional[NoiseModel] = None,
              session: Optional[Session] = None) -> ExperimentResult:
    """Figure 8(c): total variation distance from noisy simulation.

    The compiled circuit (with router swaps, Toffolis kept whole so the
    circuit stays classical) is run through the stochastic bit-level noise
    simulator; readout covers the entry module's parameter qubits, and the
    TVD is taken against the ideal (noiseless) outcome.
    """
    session = get_session(session)
    simulator = MonteCarloSimulator(noise_model=noise_model, seed=seed)
    suites = _compile_suites(session, benchmarks, policies, grid_rows,
                             grid_cols, decompose=False, record=True)
    rows = []
    for name in benchmarks:
        row: Dict[str, object] = {"benchmark": name}
        for policy in policies:
            result = suites[name][policy]
            circuit = result.to_circuit(physical=True)
            measured = result.entry_param_sites()
            run_result = simulator.run(circuit, shots=shots,
                                       measured_wires=measured)
            row[policy] = tvd_from_ideal(run_result)
        rows.append(row)
    return ExperimentResult(name="figure8c", rows=rows)


def format_report(experiment: ExperimentResult) -> str:
    """Text rendering of any of the three Figure 8 panels."""
    from repro.analysis.report import format_comparison

    titles = {
        "figure8a": "Figure 8a: Active quantum volume (lower is better)",
        "figure8b": "Figure 8b: Analytical success rate (higher is better)",
        "figure8c": "Figure 8c: Total variation distance (lower is better)",
    }
    return format_comparison(titles.get(experiment.name, experiment.name),
                             experiment.rows)
