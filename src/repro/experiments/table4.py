"""Table IV: device error rates and the simulation noise model."""

from __future__ import annotations

from typing import Optional

from repro.api import Session
from repro.experiments.runner import ExperimentResult
from repro.noise.models import table_iv_rows


def run(session: Optional[Session] = None) -> ExperimentResult:
    """Reproduce Table IV (a configuration table, no compilation needed)."""
    return ExperimentResult(name="table4", rows=table_iv_rows())


def format_report(experiment: ExperimentResult) -> str:
    """Text rendering of Table IV."""
    from repro.analysis.report import format_comparison

    return format_comparison(
        "Table IV: error rates on real devices and our simulation noise model",
        experiment.rows,
        columns=["device", "# Qubits", "single", "two", "T1 (us)", "T2 (us)"],
    )
