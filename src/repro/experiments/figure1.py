"""Figure 1: qubit usage over time for modular exponentiation.

Reproduces the motivating figure: the Eager curve uses few qubits but
stretches far in time (too many gates), the Lazy curve finishes quickly
but piles up qubits (too many qubits), and the SQUARE curve sits between
them with the smallest area under the curve — the smallest active quantum
volume.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.liveness import UsageCurve, ascii_plot, usage_curve
from repro.api import Session, SweepSpec
from repro.experiments.runner import (
    ExperimentResult,
    get_session,
    nisq_lattice_spec,
)

POLICIES: Sequence[str] = ("eager", "lazy", "square")


def run(scale: str = "laptop", policies: Sequence[str] = POLICIES,
        session: Optional[Session] = None) -> ExperimentResult:
    """Compile MODEXP under each policy and extract its usage curves."""
    session = get_session(session)
    spec = SweepSpec(
        benchmarks=("MODEXP",),
        machines=(nisq_lattice_spec(start_qubits=64),),
        policies=tuple(policies),
        scales=(scale,),
    )
    results = session.run(spec).suite(benchmark="MODEXP")
    curves: Dict[str, UsageCurve] = {
        policy: usage_curve(result, label=policy)
        for policy, result in results.items()
    }
    rows = []
    for policy, result in results.items():
        curve = curves[policy]
        rows.append({
            "policy": policy,
            "peak qubits": curve.peak,
            "total time": curve.end_time,
            "area (AQV)": result.active_quantum_volume,
            "gates": result.gate_count,
            "swaps": result.swap_count,
        })
    best = min(rows, key=lambda row: row["area (AQV)"])
    experiment = ExperimentResult(name="figure1", rows=rows)
    experiment.extras["curves"] = curves
    experiment.extras["best_policy"] = best["policy"]
    experiment.extras["plot"] = ascii_plot(list(curves.values()))
    return experiment


def format_report(experiment: ExperimentResult) -> str:
    """Human-readable report including an ASCII rendering of the curves."""
    from repro.analysis.report import format_comparison

    text = format_comparison(
        "Figure 1: qubit usage over time for MODEXP", experiment.rows,
        columns=["policy", "peak qubits", "total time", "area (AQV)", "gates",
                 "swaps"],
    )
    return text + "\n" + str(experiment.extras.get("plot", ""))
