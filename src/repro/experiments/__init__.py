"""Experiment harness: one module per table / figure of the evaluation.

Every experiment accepts an optional shared :class:`~repro.api.Session`
and compiles exclusively through it, so one CLI invocation (or one test
run) shares a single memo cache and executor across all experiments.
"""

from repro.experiments import (
    figure1,
    figure5,
    figure8,
    figure9,
    figure10,
    table3,
    table4,
)
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentResult,
    benchmark_overrides,
    compile_on_machine,
    compile_policy_suite,
    compile_with_autosize,
    ft_machine_factory,
    get_session,
    load_scaled_benchmark,
    nisq_machine_factory,
)

#: Registry of experiment runners keyed by the figure/table they regenerate.
EXPERIMENTS = {
    "figure1": (figure1.run, figure1.format_report),
    "figure5": (figure5.run, figure5.format_report),
    "table3": (table3.run, table3.format_report),
    "figure8a": (figure8.run_aqv, figure8.format_report),
    "figure8b": (figure8.run_success, figure8.format_report),
    "figure8c": (figure8.run_noise, figure8.format_report),
    "figure9": (figure9.run, figure9.format_report),
    "figure10": (figure10.run, figure10.format_report),
    "table4": (table4.run, table4.format_report),
}

__all__ = [
    "DEFAULT_POLICIES",
    "EXPERIMENTS",
    "ExperimentResult",
    "benchmark_overrides",
    "compile_on_machine",
    "compile_policy_suite",
    "compile_with_autosize",
    "ft_machine_factory",
    "get_session",
    "load_scaled_benchmark",
    "nisq_machine_factory",
]
