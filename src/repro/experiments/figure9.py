"""Figure 9: normalized AQV on medium-scale (NISQ-FT boundary) machines.

The large benchmarks of Table II are compiled onto lattice machines with
swap-based communication (hundreds to thousands of qubits, no error
correction) under Lazy, Eager, SQUARE(LAA only) and SQUARE; every AQV is
normalised to the Lazy policy, matching the presentation of Figure 9.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, normalized_aqv
from repro.api import Session, SweepSpec
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentResult,
    get_session,
    nisq_lattice_spec,
)
from repro.workloads.registry import LARGE_BENCHMARKS

POLICIES: Sequence[str] = DEFAULT_POLICIES


def run(benchmarks: Sequence[str] = tuple(LARGE_BENCHMARKS),
        policies: Sequence[str] = POLICIES,
        scale: str = "laptop",
        session: Optional[Session] = None) -> ExperimentResult:
    """Compile every large benchmark under every policy on lattice machines."""
    session = get_session(session)
    spec = SweepSpec(
        benchmarks=tuple(benchmarks),
        machines=(nisq_lattice_spec(start_qubits=64),),
        policies=tuple(policies),
        scales=(scale,),
    )
    sweep = session.run(spec)

    rows = []
    reductions = []
    raw: Dict[str, Dict[str, object]] = {}
    for name in benchmarks:
        suite = sweep.suite(benchmark=name)
        normalized = normalized_aqv(suite, baseline="lazy")
        row: Dict[str, object] = {"benchmark": name}
        for policy in policies:
            row[policy] = normalized[policy]
        rows.append(row)
        raw[name] = {policy: suite[policy].active_quantum_volume
                     for policy in policies}
        if normalized["square"] > 0:
            reductions.append(1.0 / normalized["square"])
    experiment = ExperimentResult(name="figure9", rows=rows)
    experiment.extras["raw_aqv"] = raw
    experiment.extras["mean_reduction_vs_lazy"] = arithmetic_mean(reductions)
    return experiment


def format_report(experiment: ExperimentResult) -> str:
    """Text rendering with the mean SQUARE-vs-Lazy reduction factor."""
    from repro.analysis.report import format_comparison

    text = format_comparison(
        "Figure 9: normalized AQV on NISQ-FT boundary machines "
        "(normalised to Lazy; lower is better)",
        experiment.rows,
    )
    mean = experiment.extras.get("mean_reduction_vs_lazy", 0.0)
    text += f"mean AQV reduction of SQUARE vs Lazy: {mean:.2f}x\n"
    return text
