"""Figure 10: normalized AQV on fault-tolerant (braided) machines.

Same benchmarks and policies as Figure 9, but the target machine is the
surface-code FT model: communication happens by braiding, the
communication factor fed to the CER heuristic is the braid-crossing rate,
and logical gate durations follow the FT duration table.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.analysis.metrics import arithmetic_mean, normalized_aqv
from repro.api import Session, SweepSpec
from repro.experiments.runner import (
    DEFAULT_POLICIES,
    ExperimentResult,
    ft_lattice_spec,
    get_session,
)
from repro.workloads.registry import LARGE_BENCHMARKS

POLICIES: Sequence[str] = DEFAULT_POLICIES


def run(benchmarks: Sequence[str] = tuple(LARGE_BENCHMARKS),
        policies: Sequence[str] = POLICIES,
        scale: str = "laptop",
        session: Optional[Session] = None) -> ExperimentResult:
    """Compile every large benchmark on FT machines and normalise to Lazy."""
    session = get_session(session)
    spec = SweepSpec(
        benchmarks=tuple(benchmarks),
        machines=(ft_lattice_spec(start_qubits=64),),
        policies=tuple(policies),
        scales=(scale,),
    )
    sweep = session.run(spec)

    rows = []
    reductions = []
    raw: Dict[str, Dict[str, object]] = {}
    for name in benchmarks:
        suite = sweep.suite(benchmark=name)
        normalized = normalized_aqv(suite, baseline="lazy")
        row: Dict[str, object] = {"benchmark": name}
        for policy in policies:
            row[policy] = normalized[policy]
        rows.append(row)
        raw[name] = {policy: suite[policy].active_quantum_volume
                     for policy in policies}
        if normalized["square"] > 0:
            reductions.append(1.0 - normalized["square"])
    experiment = ExperimentResult(name="figure10", rows=rows)
    experiment.extras["raw_aqv"] = raw
    experiment.extras["mean_reduction_vs_lazy_pct"] = (
        100.0 * arithmetic_mean(reductions)
    )
    experiment.extras["max_reduction_vs_lazy_pct"] = (
        100.0 * max(reductions) if reductions else 0.0
    )
    return experiment


def format_report(experiment: ExperimentResult) -> str:
    """Text rendering with the mean / max AQV reduction percentages."""
    from repro.analysis.report import format_comparison

    text = format_comparison(
        "Figure 10: normalized AQV on fault-tolerant machines "
        "(normalised to Lazy; lower is better)",
        experiment.rows,
    )
    mean = experiment.extras.get("mean_reduction_vs_lazy_pct", 0.0)
    best = experiment.extras.get("max_reduction_vs_lazy_pct", 0.0)
    text += (f"mean AQV reduction of SQUARE vs Lazy: {mean:.1f}%  "
             f"(max {best:.1f}%)\n")
    return text
