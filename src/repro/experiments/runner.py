"""Shared experiment infrastructure.

Every experiment module expands its benchmark x policy grid into a
:class:`~repro.api.SweepSpec` and executes it through a
:class:`~repro.api.Session` (passed in by the CLI so all experiments
share one memo cache and one executor), then post-processes the
:class:`~repro.core.result.CompilationResult` objects into the rows or
series of the corresponding table / figure.

The ``compile_*`` helpers at the bottom predate the :mod:`repro.api`
service and are kept as thin compatibility shims for existing examples
and scripts; new code should submit jobs to a ``Session`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.api import MachineSpec, Session, autosize_compile
from repro.arch.ft import FTMachine
from repro.arch.machine import Machine
from repro.arch.nisq import NISQMachine
from repro.core.compiler import SquareCompiler, preset
from repro.core.result import CompilationResult
from repro.ir.program import Program
from repro.workloads.registry import (
    LAPTOP_SCALE_OVERRIDES,
    QUICK_SCALE_OVERRIDES,
    benchmark_overrides,
    load_scaled_benchmark,
)

#: Policies evaluated throughout Section V, in presentation order.
DEFAULT_POLICIES: Sequence[str] = ("lazy", "eager", "square-laa", "square")


@dataclass
class ExperimentResult:
    """Generic experiment output: rows plus free-form extra data.

    Attributes:
        name: Experiment identifier (e.g. ``"figure9"``).
        rows: Table rows ready for :func:`repro.analysis.report.format_table`.
        extras: Any additional structured data (curves, summaries).
    """

    name: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)


def get_session(session: Optional[Session] = None) -> Session:
    """The session an experiment should compile through.

    Experiments accept an optional shared session (the CLI provides one
    covering the whole invocation, with ``--jobs N`` parallelism); when
    called directly they fall back to a private serial session.
    """
    return session if session is not None else Session()


# ----------------------------------------------------------------------
# Machine-spec shorthands shared by the experiment modules
# ----------------------------------------------------------------------
def nisq_lattice_spec(start_qubits: int = 32) -> MachineSpec:
    """Autosized lattice NISQ machines (Figures 1 and 9)."""
    return MachineSpec.nisq_autosize(start_qubits=start_qubits)


def ft_lattice_spec(start_qubits: int = 32) -> MachineSpec:
    """Autosized surface-code FT machines (Figure 10)."""
    return MachineSpec.ft_autosize(start_qubits=start_qubits)


# ----------------------------------------------------------------------
# Pre-``repro.api`` compatibility helpers
# ----------------------------------------------------------------------
def compile_on_machine(
    program: Program,
    machine: Machine,
    policy: str,
    **config_overrides,
) -> CompilationResult:
    """Compile one program under one named policy preset.

    Compatibility shim over :class:`~repro.core.compiler.SquareCompiler`;
    prefer ``Session.compile`` for new code.
    """
    config = preset(policy, **config_overrides)
    return SquareCompiler(machine, config).compile(program)


def compile_with_autosize(
    program: Program,
    policy: str,
    machine_factory: Callable[[int], Machine],
    start_qubits: int = 32,
    max_qubits: int = 1 << 16,
    **config_overrides,
) -> CompilationResult:
    """Compile, growing the machine until the program fits.

    Lazy compilations can need many more qubits than SQUARE or Eager; the
    paper sweeps machine sizes, and this helper finds the smallest
    power-of-two-ish machine that accommodates the policy.  Delegates to
    the shared :func:`repro.api.autosize_compile` search (the same one
    autosizing :class:`~repro.api.MachineSpec` jobs run through).
    """
    return autosize_compile(program, machine_factory,
                            preset(policy, **config_overrides),
                            start_qubits=start_qubits,
                            max_qubits=max_qubits)


def compile_policy_suite(
    program: Program,
    machine_factory: Callable[[int], Machine],
    policies: Sequence[str] = DEFAULT_POLICIES,
    start_qubits: int = 32,
    **config_overrides,
) -> Dict[str, CompilationResult]:
    """Compile a program under every policy, auto-sizing the machine."""
    results: Dict[str, CompilationResult] = {}
    for policy in policies:
        results[policy] = compile_with_autosize(
            program, policy, machine_factory, start_qubits=start_qubits,
            **config_overrides,
        )
    return results


def nisq_machine_factory(rows: Optional[int] = None, cols: Optional[int] = None
                         ) -> Callable[[int], Machine]:
    """Factory producing lattice NISQ machines of at least ``n`` qubits."""
    if rows is not None and cols is not None:
        return lambda _n: NISQMachine.grid(rows, cols)
    return lambda n: NISQMachine.with_qubits(n)


def ft_machine_factory() -> Callable[[int], Machine]:
    """Factory producing surface-code FT machines of at least ``n`` qubits."""
    return lambda n: FTMachine.with_qubits(n)
