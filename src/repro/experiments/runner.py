"""Shared experiment infrastructure.

Every experiment module compiles a set of benchmarks under the four
compiler configurations of the paper (Lazy, Eager, SQUARE-LAA-only and
SQUARE) on an appropriate machine, then post-processes the
:class:`~repro.core.result.CompilationResult` objects into the rows or
series of the corresponding table / figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ExperimentError, ResourceExhaustedError
from repro.arch.ft import FTMachine
from repro.arch.machine import Machine
from repro.arch.nisq import NISQMachine
from repro.core.compiler import SquareCompiler, preset
from repro.core.result import CompilationResult
from repro.ir.program import Program
from repro.workloads.registry import load_benchmark

#: Policies evaluated throughout Section V, in presentation order.
DEFAULT_POLICIES: Tuple[str, ...] = ("lazy", "eager", "square-laa", "square")

#: Benchmark size overrides used for laptop-scale runs of the large
#: benchmarks (Figures 9 and 10).  The paper compiles the full-width
#: versions on a workstation; the reduced widths preserve the modular
#: structure and the relative policy behaviour while keeping a full sweep
#: in the minutes range.  Pass ``scale="paper"`` to use full widths.
LAPTOP_SCALE_OVERRIDES: Mapping[str, Dict[str, int]] = {
    "MUL32": {"width": 12},
    "MUL64": {"width": 16},
    "MODEXP": {"width": 4, "exponent_bits": 4},
    "SHA2": {"word_width": 8, "rounds": 4},
    "SALSA20": {"word_width": 8, "rounds": 2},
}

QUICK_SCALE_OVERRIDES: Mapping[str, Dict[str, int]] = {
    "ADDER32": {"width": 16},
    "ADDER64": {"width": 24},
    "MUL32": {"width": 6},
    "MUL64": {"width": 8},
    "MODEXP": {"width": 3, "exponent_bits": 3},
    "SHA2": {"word_width": 4, "rounds": 2},
    "SALSA20": {"word_width": 4, "rounds": 1},
}


def benchmark_overrides(name: str, scale: str = "laptop") -> Dict[str, int]:
    """Size overrides for a large benchmark under the given scale."""
    if scale == "paper":
        return {}
    if scale == "quick":
        return dict(QUICK_SCALE_OVERRIDES.get(name, {}))
    if scale == "laptop":
        return dict(LAPTOP_SCALE_OVERRIDES.get(name, {}))
    raise ExperimentError(f"unknown scale {scale!r}; use quick, laptop or paper")


def load_scaled_benchmark(name: str, scale: str = "laptop") -> Program:
    """Load a benchmark at the requested scale."""
    return load_benchmark(name, **benchmark_overrides(name, scale))


@dataclass
class ExperimentResult:
    """Generic experiment output: rows plus free-form extra data.

    Attributes:
        name: Experiment identifier (e.g. ``"figure9"``).
        rows: Table rows ready for :func:`repro.analysis.report.format_table`.
        extras: Any additional structured data (curves, summaries).
    """

    name: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)


def compile_on_machine(
    program: Program,
    machine: Machine,
    policy: str,
    **config_overrides,
) -> CompilationResult:
    """Compile one program under one named policy preset."""
    config = preset(policy, **config_overrides)
    return SquareCompiler(machine, config).compile(program)


def compile_with_autosize(
    program: Program,
    policy: str,
    machine_factory: Callable[[int], Machine],
    start_qubits: int = 32,
    max_qubits: int = 1 << 16,
    **config_overrides,
) -> CompilationResult:
    """Compile, growing the machine until the program fits.

    Lazy compilations can need many more qubits than SQUARE or Eager; the
    paper sweeps machine sizes, and this helper finds the smallest
    power-of-two-ish machine that accommodates the policy.
    """
    qubits = max(start_qubits, program.entry.num_params + 4)
    while True:
        machine = machine_factory(qubits)
        try:
            return compile_on_machine(program, machine, policy, **config_overrides)
        except ResourceExhaustedError:
            if qubits >= max_qubits:
                raise
            qubits *= 2


def compile_policy_suite(
    program: Program,
    machine_factory: Callable[[int], Machine],
    policies: Sequence[str] = DEFAULT_POLICIES,
    start_qubits: int = 32,
    **config_overrides,
) -> Dict[str, CompilationResult]:
    """Compile a program under every policy, auto-sizing the machine."""
    results: Dict[str, CompilationResult] = {}
    for policy in policies:
        results[policy] = compile_with_autosize(
            program, policy, machine_factory, start_qubits=start_qubits,
            **config_overrides,
        )
    return results


def nisq_machine_factory(rows: Optional[int] = None, cols: Optional[int] = None
                         ) -> Callable[[int], Machine]:
    """Factory producing lattice NISQ machines of at least ``n`` qubits."""
    if rows is not None and cols is not None:
        return lambda _n: NISQMachine.grid(rows, cols)
    return lambda n: NISQMachine.with_qubits(n)


def ft_machine_factory() -> Callable[[int], Machine]:
    """Factory producing surface-code FT machines of at least ``n`` qubits."""
    return lambda n: FTMachine.with_qubits(n)
