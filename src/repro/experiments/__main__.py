"""Command-line entry point: ``python -m repro.experiments <name> [...]``.

All commands compile through one shared :class:`~repro.api.Session`, so
``--jobs N`` parallelises any experiment across N worker processes and
overlapping experiments (e.g. ``all``) reuse each other's results.

With ``--cache-dir`` the session is backed by a persistent
:class:`~repro.service.cache.DiskCache`, so rerunning a sweep after a
process restart serves repeated jobs from disk instead of recompiling;
``serve`` exposes the same session over HTTP (see :mod:`repro.service`).

Examples::

    python -m repro.experiments table3
    python -m repro.experiments figure9 --scale quick --jobs 4
    python -m repro.experiments all --scale quick --export rows.json
    python -m repro.experiments sweep RD53 ADDER4 --policies lazy square \\
        --grid 5 5 --export sweep.csv --cache-dir ~/.cache/repro
    python -m repro.experiments compile MODEXP --policy square --scale quick
    python -m repro.experiments serve --port 8731 --workers 4 \\
        --queue-size 128 --cache-dir ~/.cache/repro \\
        --tenants tenants.json --store-dir ~/.repro-jobs
    python -m repro.experiments cluster-sweep RD53 ADDER4 \\
        --endpoint http://127.0.0.1:8731 --endpoint http://127.0.0.1:8732 \\
        --policies lazy square --grid 5 5 --export cluster.csv
    python -m repro.experiments tune RD53 MUL32 --strategy halving \\
        --scales quick laptop --objective aqv --grid 5 5 \\
        --journal tune.jsonl --export-best best.json
    python -m repro.experiments cluster-stats \\
        --endpoint http://127.0.0.1:8731 --endpoint http://127.0.0.1:8732
    python -m repro.experiments metrics \\
        --endpoint http://127.0.0.1:8731 --endpoint http://127.0.0.1:8732
    python -m repro.experiments trace 4f2a... \\
        --endpoint http://127.0.0.1:8731 --endpoint http://127.0.0.1:8732
    python -m repro.experiments logs --trace 4f2a... \\
        --endpoint http://127.0.0.1:8731 --endpoint http://127.0.0.1:8732
    python -m repro.experiments bench compare --suite telemetry
    python -m repro.experiments profile RD53 ADDER4 \\
        --policies eager square --grid 5 5 --scale quick
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.api import MachineSpec, Session, SweepSpec
from repro.experiments import DEFAULT_POLICIES, EXPERIMENTS
from repro.workloads.registry import SCALES, benchmark_names


def _machine_spec(args: argparse.Namespace) -> MachineSpec:
    """Build the target machine spec from CLI flags."""
    if args.grid:
        if args.machine not in ("nisq", "ft"):
            raise SystemExit(
                f"--grid only applies to lattice machines (nisq, ft), "
                f"not {args.machine!r}; use --machine-qubits instead"
            )
        rows, cols = args.grid
        return MachineSpec(kind=args.machine, rows=rows, cols=cols)
    if args.machine_qubits is not None:
        return MachineSpec(kind=args.machine, num_qubits=args.machine_qubits)
    return MachineSpec(kind=args.machine, autosize=True,
                       start_qubits=args.start_qubits)


def _run_experiment(name: str, session: Session,
                    args: argparse.Namespace) -> tuple[str, list]:
    runner, formatter = EXPERIMENTS[name]
    kwargs = {"session": session}
    if name in ("figure1", "figure9", "figure10"):
        kwargs["scale"] = args.scale
    if name == "figure8c":
        kwargs["shots"] = args.shots
    started = time.perf_counter()
    experiment = runner(**kwargs)
    elapsed = time.perf_counter() - started
    text = formatter(experiment) + f"\n[{name} completed in {elapsed:.1f}s]\n"
    return text, experiment.rows


def _cache_note(session: Session) -> str:
    """Disk-cache telemetry suffix for command summaries."""
    if session.disk_cache is None:
        return ""
    return f", {session.disk_hits} disk hits"


def _run_sweep(session: Session, args: argparse.Namespace) -> tuple[str, list]:
    benchmarks = tuple(args.names) or tuple(benchmark_names())
    spec = SweepSpec(
        benchmarks=benchmarks,
        machines=(_machine_spec(args),),
        policies=tuple(args.policies or DEFAULT_POLICIES),
        scales=(args.scale,),
    )
    started = time.perf_counter()
    sweep = session.run(spec)
    elapsed = time.perf_counter() - started
    title = (f"Sweep: {len(benchmarks)} benchmark(s) x "
             f"{len(spec.policies)} policy(ies) at scale {args.scale}")
    text = (sweep.table(title)
            + f"\n[{len(sweep)} jobs completed in {elapsed:.1f}s, "
            f"{sweep.cache_hits} cache hits{_cache_note(session)}]\n")
    return text, sweep.rows()


def _run_cluster_sweep(args: argparse.Namespace) -> tuple[str, list]:
    """Shard a sweep across the given service endpoints, streaming
    per-entry progress lines as workers finish jobs."""
    from repro.cluster import ClusterCoordinator

    benchmarks = tuple(args.names) or tuple(benchmark_names())
    spec = SweepSpec(
        benchmarks=benchmarks,
        machines=(_machine_spec(args),),
        policies=tuple(args.policies or DEFAULT_POLICIES),
        scales=(args.scale,),
    )
    total = len(spec)

    def progress(index: int, entry) -> None:
        status = "ok" if entry.ok else f"FAILED ({entry.error.error_type})"
        print(f"  [{index + 1}/{total}] {entry.job.program_label} / "
              f"{entry.job.policy_label}: {status}", flush=True)

    coordinator = ClusterCoordinator(args.endpoint, api_key=args.api_key)
    # Announced up front so `trace` can fetch the waterfall mid-flight
    # (every shard of this sweep carries this one id).
    print(f"[trace id: {coordinator.trace_id}]", flush=True)
    started = time.perf_counter()
    sweep = coordinator.run(spec, on_entry=progress)
    elapsed = time.perf_counter() - started
    fleet = coordinator.stats()
    title = (f"Cluster sweep: {len(benchmarks)} benchmark(s) x "
             f"{len(spec.policies)} policy(ies) at scale {args.scale} "
             f"across {fleet['topology']['registered']} worker(s)")
    text = (sweep.table(title)
            + f"\n[{len(sweep)} jobs completed in {elapsed:.1f}s, "
            f"{fleet['rounds_run']} dispatch round(s), "
            f"{fleet['redispatched_jobs']} re-dispatched, "
            f"{fleet['topology']['alive']} worker(s) alive]\n")
    return text, sweep.rows()


def _run_tune(args: argparse.Namespace) -> tuple[str, list]:
    """Search the policy/config space for the given benchmarks."""
    from repro.exceptions import TunerError
    from repro.tuner import (
        GridSearch,
        MultiObjective,
        RandomSearch,
        SearchSpace,
        SuccessiveHalving,
        TuningRun,
    )

    if not args.names:
        raise SystemExit("tune needs benchmark names, e.g. "
                         "`python -m repro.experiments tune RD53 MUL32`")
    scales = tuple(args.scales or ("quick", "laptop"))
    if args.strategy == "grid":
        strategy = GridSearch(scale=scales[-1])
    elif args.strategy == "random":
        strategy = RandomSearch(trials=8 if args.trials is None
                                else args.trials,
                                seed=args.seed, scale=scales[-1])
    else:
        strategy = SuccessiveHalving(scales=scales, trials=args.trials,
                                     seed=args.seed)
    if args.endpoint:
        from repro.cluster import ClusterCoordinator

        backend = ClusterCoordinator(args.endpoint, api_key=args.api_key)
        backend_label = f"{len(args.endpoint)}-worker cluster"
    else:
        backend = Session(jobs=args.jobs, cache_dir=args.cache_dir)
        backend_label = "local session"

    def progress(record: dict) -> None:
        status = "ok" if record["ok"] else \
            f"FAILED ({record['error']['error_type']})"
        knobs = ",".join(f"{k}={v}" for k, v
                         in sorted(record["candidate"].items()))
        print(f"  [{record['benchmark']} @{record['scale']}] "
              f"{knobs}: {status}", flush=True)

    run = TuningRun(
        SearchSpace.policy_space(),
        MultiObjective(*(args.objective or ["aqv"])),
        strategy,
        args.names,
        machine=_machine_spec(args),
        backend=backend,
        journal_path=args.journal,
        on_trial=progress,
    )
    started = time.perf_counter()
    report = run.run()
    elapsed = time.perf_counter() - started
    stats = run.stats()
    try:
        best = report.best_config()
    except TunerError:
        # Per-trial failure is a structured outcome, not a crash: the
        # leaderboard (with its error column) is still worth printing.
        best = None
    title = (f"Tuning leaderboard: {len(args.names)} benchmark(s), "
             f"{args.strategy} over {len(run.space)} candidate(s) "
             f"via {backend_label}")
    text = (report.table(title)
            + f"\n[{stats['trials_executed']} trial(s) compiled, "
            f"{stats['trials_deduped']} deduped, "
            f"{stats['journal_restored']} restored from journal "
            f"in {elapsed:.1f}s]\n")
    if best is None:
        text += ("best config: none — every candidate failed "
                 "(see the error column above)\n")
    else:
        text += f"best config: {best}\n"
    if args.export_best:
        if best is None:
            raise SystemExit("cannot export a best config: every "
                             "candidate failed")
        import json as _json

        with open(args.export_best, "w", encoding="utf-8") as stream:
            stream.write(_json.dumps(best, indent=1, sort_keys=True))
        text += f"[best config exported to {args.export_best}]\n"
    if args.export:
        if args.export.lower().endswith(".json"):
            report.to_json(args.export)
        else:
            from repro.analysis.report import export_rows

            export_rows(report.leaderboard_rows(), path=args.export)
        text += f"[leaderboard exported to {args.export}]\n"
    return text, report.leaderboard_rows()


def _run_cluster_stats(args: argparse.Namespace) -> str:
    """Aggregate `/stats` across a fleet of compile servers."""
    from repro.analysis.report import format_comparison
    from repro.cluster import ClusterTopology

    stats = ClusterTopology(args.endpoint,
                            api_key=args.api_key).fleet_stats()
    columns = ("worker", "up", "queue", "busy", "jobs_run", "failures",
               "cache_hits", "cache_misses", "disk_hits", "disk_entries",
               "evictions", "orphans")

    def row(label: str, up: str, source: dict) -> dict:
        return {
            "worker": label,
            "up": up,
            "queue": f"{source.get('queue_depth', 0)}/"
                     f"{source.get('queue_capacity', 0)}",
            "busy": f"{source.get('busy_workers', 0)}/"
                    f"{source.get('workers', 0)}",
            "jobs_run": source.get("jobs_run", 0),
            "failures": source.get("job_failures", 0),
            "cache_hits": source.get("cache_hits", 0),
            "cache_misses": source.get("cache_misses", 0),
            "disk_hits": source.get("disk_hits", 0),
            "disk_entries": source.get("disk_entries", 0),
            "evictions": source.get("disk_evictions", 0),
            "orphans": source.get("disk_orphans", 0),
        }

    rows = []
    for worker in stats["workers"]:
        if worker.get("reachable"):
            rows.append(row(worker["url"], "yes", worker))
        else:
            rows.append(dict.fromkeys(columns, "")
                        | {"worker": worker["url"], "up": "DOWN"})
    rows.append(row("FLEET TOTAL", "", stats["fleet"]))
    title = (f"Cluster stats: {stats['reachable']}/{stats['registered']} "
             f"worker(s) reachable")
    text = format_comparison(title, rows, columns=list(columns))
    down = [worker for worker in stats["workers"]
            if not worker.get("reachable")]
    for worker in down:
        text += f"[{worker['url']} unreachable: {worker['error']}]\n"
    return text


def _run_metrics(args: argparse.Namespace) -> str:
    """Scrape `/metrics` from one server, or a merged fleet exposition.

    One ``--endpoint`` prints the worker's exposition verbatim (pipe it
    straight into promtool or a file_sd scrape); several endpoints
    print :meth:`~repro.cluster.ClusterTopology.fleet_metrics` — every
    sample gains a ``worker`` label plus a synthesized
    ``repro_worker_up`` gauge per endpoint.
    """
    if len(args.endpoint) == 1:
        from repro.service.client import ServiceClient

        return ServiceClient(args.endpoint[0],
                             api_key=args.api_key).metrics_text()
    from repro.cluster import ClusterTopology

    return ClusterTopology(args.endpoint,
                           api_key=args.api_key).fleet_metrics()


def _run_trace(args: argparse.Namespace) -> tuple[str, int]:
    """Fetch one trace's spans + events and render the ASCII waterfall.

    One ``--endpoint`` renders that worker's view of the trace; several
    render :meth:`~repro.cluster.ClusterTopology.fleet_trace` — the
    merged fleet view, each span labelled with the worker that recorded
    it — which is the full waterfall of a ``cluster-sweep`` (its trace
    id is printed when the sweep starts).  Log events carrying the same
    trace id interleave into the waterfall as ``*`` markers.  A trace
    id no endpoint knows (no spans *and* no events) exits non-zero.
    """
    from repro.exceptions import ServiceError
    from repro.telemetry import render_waterfall

    trace_id = args.names[0]
    if len(args.endpoint) == 1:
        from repro.service.client import ServiceClient

        client = ServiceClient(args.endpoint[0], api_key=args.api_key)
        spans = client.trace(trace_id).get("spans") or []
        try:
            events = client.logs(trace_id).get("events") or []
        except ServiceError:
            events = []  # a pre-/logs server still renders its spans
    else:
        from repro.cluster import ClusterTopology

        topology = ClusterTopology(args.endpoint, api_key=args.api_key)
        payload = topology.fleet_trace(trace_id)
        spans = payload.get("spans") or []
        for url, worker in sorted(payload.get("workers", {}).items()):
            if not worker.get("reachable"):
                print(f"[{url} unreachable: {worker.get('error')}]",
                      flush=True)
        events = topology.fleet_logs(trace_id).get("events") or []
    if not spans and not events:
        print(f"[trace {trace_id}: no spans or events recorded on any "
              f"endpoint]", file=sys.stderr)
        return "", 1
    return render_waterfall(spans, events=events), 0


def _run_logs(args: argparse.Namespace) -> tuple[str, int]:
    """Fetch structured log events from one server or a merged fleet.

    One ``--endpoint`` queries that worker's ``GET /logs``; several
    merge :meth:`~repro.cluster.ClusterTopology.fleet_logs` — each
    event tagged with the worker it came from, deduplicated on
    ``(worker, event_id)``, in deterministic ``(ts, event_id)`` order.
    With ``--trace`` the query is scoped to one trace id and exits
    non-zero when no endpoint has events for it.
    """
    from repro.telemetry import LogEvent, format_event

    # --trace omitted means "across all traces" (the server treats an
    # empty trace filter as a wildcard, unlike the client's default of
    # its own minted id).
    trace = args.trace if args.trace is not None else ""
    filters = {"tenant": args.tenant, "level": args.level,
               "since": args.since, "limit": args.limit}
    if len(args.endpoint) == 1:
        from repro.service.client import ServiceClient

        payload = ServiceClient(args.endpoint[0],
                                api_key=args.api_key).logs(trace, **filters)
    else:
        from repro.cluster import ClusterTopology

        payload = ClusterTopology(args.endpoint,
                                  api_key=args.api_key).fleet_logs(
                                      trace, **filters)
        for url, worker in sorted(payload.get("workers", {}).items()):
            if not worker.get("reachable"):
                print(f"[{url} unreachable: {worker.get('error')}]",
                      flush=True)
    events = payload.get("events") or []
    lines = []
    for record in events:
        line = format_event(LogEvent.from_dict(record))
        worker = record.get("worker")
        if worker:
            line += f" worker={worker}"
        lines.append(line)
    if not events:
        scope = f"trace {args.trace}" if args.trace else "the given filters"
        print(f"[no log events recorded for {scope} on any endpoint]",
              file=sys.stderr)
        return "", 1 if args.trace else 0
    return "\n".join(lines) + f"\n[{len(events)} event(s)]\n", 0


def _run_bench(args: argparse.Namespace) -> tuple[str, int]:
    """The benchmark-trajectory commands: list, compare, trend.

    ``list`` surveys the history journal; ``compare`` gates the current
    ``BENCH_<suite>.json`` against a baseline (default: the newest
    committed history record) and exits non-zero on any regression;
    ``trend`` tabulates a suite's metric trajectory across history.
    """
    from repro import bench
    from repro.analysis.report import format_comparison
    from repro.exceptions import BenchError

    action = args.names[0]
    history = args.history or bench.HISTORY_DIR
    if action == "list":
        rows = []
        for suite in bench.list_suites(history):
            journal = bench.read_history(history, suite)
            records = journal["records"]
            rows.append({
                "suite": suite,
                "runs": len(records),
                "torn": journal["torn_lines"],
                "latest": records[-1]["generated_at"] if records else "-",
            })
        if not rows:
            return f"[no bench history under {history}]\n", 0
        return format_comparison(
            f"bench history: {len(rows)} suite(s) under {history}", rows,
            columns=["suite", "runs", "torn", "latest"]), 0
    if not args.suite:
        raise SystemExit(f"bench {action} needs --suite, e.g. "
                         f"`python -m repro.experiments bench {action} "
                         f"--suite telemetry`")
    if action == "trend":
        journal = bench.read_history(history, args.suite)
        text = bench.render_trend(args.suite, journal["records"],
                                  metrics=args.metric)
        if journal["torn_lines"]:
            text += f"[{journal['torn_lines']} torn line(s) skipped]\n"
        return text, 0
    # compare: current snapshot vs the newest history record (or an
    # explicit --baseline snapshot).
    current_path = args.bench_file or f"BENCH_{args.suite}.json"
    try:
        current = bench.load_bench(current_path)
        if args.baseline:
            baseline = bench.load_bench(args.baseline)
        else:
            records = bench.read_history(history, args.suite)["records"]
            if not records:
                raise BenchError(
                    f"no baseline: history journal "
                    f"{bench.history_path(history, args.suite)} is empty "
                    f"(pass --baseline or seed the journal)")
            baseline = records[-1]
        report = bench.compare(baseline, current)
    except BenchError as error:
        print(f"[bench compare failed: {error}]", file=sys.stderr)
        return "", 2
    return bench.render_compare(report), 0 if report["ok"] else 1


def _run_profile(args: argparse.Namespace) -> tuple[str, list]:
    """Profile fresh in-process compiles of the named benchmarks."""
    from repro.profile import profile_benchmarks

    benchmarks = tuple(args.names) or tuple(benchmark_names())
    policies = tuple(args.policies or ["square"])
    started = time.perf_counter()
    report = profile_benchmarks(benchmarks, _machine_spec(args),
                                policies=policies, scale=args.scale)
    elapsed = time.perf_counter() - started
    title = (f"Compile-path profile: {len(benchmarks)} benchmark(s) x "
             f"{len(policies)} policy(ies) at scale {args.scale}")
    text = (report.table(title)
            + f"[{len(report)} fresh compile(s) profiled in "
            f"{elapsed:.1f}s]\n")
    return text, report.hotspots()


def _run_verify(session: Session,
                args: argparse.Namespace) -> tuple[str, list, int]:
    """Compile and statically verify; non-zero exit on any finding."""
    benchmarks = tuple(args.names) or tuple(benchmark_names())
    # Gate-stream rules (RV001-RV003) need the recorded schedule; force
    # it on so `verify` never silently runs at reduced coverage.
    spec = SweepSpec(
        benchmarks=benchmarks,
        machines=(_machine_spec(args),),
        policies=tuple(args.policies or DEFAULT_POLICIES),
        scales=(args.scale,),
    ).with_config(record_schedule=True)
    started = time.perf_counter()
    sweep = session.run(spec)
    elapsed = time.perf_counter() - started
    bad = sweep.verification_failures()
    title = (f"Verify: {len(benchmarks)} benchmark(s) x "
             f"{len(spec.policies)} policy(ies) at scale {args.scale}")
    text = sweep.table(title)
    for entry in bad:
        text += f"\n{entry.verification.summary()}\n"
        for diagnostic in entry.verification.findings:
            text += f"  {diagnostic.describe()}\n"
    checked = sum(entry.verification.checked_gates for entry in sweep
                  if entry.verification is not None)
    findings = sum(len(entry.verification.findings) for entry in bad)
    text += (f"\n[{len(sweep)} result(s) verified in {elapsed:.1f}s: "
             f"{checked} gates checked, {findings} finding(s)"
             f"{_cache_note(session)}]\n")
    return text, sweep.rows(), 1 if bad else 0


def _run_compile(session: Session, args: argparse.Namespace) -> tuple[str, list]:
    if not args.names:
        raise SystemExit("compile needs a benchmark name, e.g. "
                         "`python -m repro.experiments compile RD53`")
    if len(args.names) > 1:
        raise SystemExit("compile takes one benchmark; use `sweep` for "
                         "several")
    benchmark = args.names[0]
    policies = tuple(args.policies or ["square"])
    from repro.workloads.registry import benchmark_overrides
    from repro.api import CompileJob

    machine = _machine_spec(args)
    overrides = benchmark_overrides(benchmark, args.scale)
    sweep = session.run([
        CompileJob.for_benchmark(benchmark, machine, policy,
                                 overrides=overrides)
        for policy in policies
    ])
    # Same row schema as `sweep`, so --export output from the two
    # commands concatenates and diffs cleanly.
    rows = sweep.rows()
    from repro.analysis.report import format_comparison

    text = format_comparison(
        f"compile {benchmark} under {', '.join(policies)}", rows)
    text += f"\n[{len(sweep)} jobs, {sweep.cache_hits} cache hits" \
            f"{_cache_note(session)}]\n"
    return text, rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the tables and figures of the SQUARE paper, "
                    "or run ad-hoc sweeps, through the repro.api service.",
    )
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "sweep",
                                                       "compile", "verify",
                                                       "serve",
                                                       "cluster-sweep",
                                                       "tune",
                                                       "cluster-stats",
                                                       "metrics",
                                                       "trace",
                                                       "logs",
                                                       "bench",
                                                       "profile"],
                        help="which table/figure to regenerate, `sweep` / "
                             "`compile` for ad-hoc jobs, `verify` to "
                             "compile and statically check results "
                             "(non-zero exit on findings), `serve` to "
                             "expose the session over HTTP, `cluster-sweep` "
                             "to shard a sweep across running servers, "
                             "`tune` to auto-search the policy space, "
                             "`cluster-stats` to aggregate fleet telemetry, "
                             "`metrics` to scrape the Prometheus "
                             "exposition from one server or a whole fleet, "
                             "`trace` to render a trace id's span "
                             "waterfall (log events interleaved), `logs` "
                             "to query structured events from one server "
                             "or a merged fleet, `bench` to "
                             "list/compare/trend the BENCH_*.json "
                             "trajectory (compare exits non-zero on a "
                             "regression), or `profile` to profile the "
                             "compile path per phase")
    parser.add_argument("names", nargs="*",
                        help="benchmark names for `sweep`/`verify`/"
                             "`profile` (default: all) and `compile`, "
                             "the trace id for `trace`, or the action "
                             "(list, compare, trend) for `bench`")
    parser.add_argument("--scale", default="laptop", choices=list(SCALES),
                        help="benchmark size scale for the large benchmarks")
    parser.add_argument("--shots", type=int, default=2048,
                        help="shots for the noise-simulation experiment")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for compilation (1 = serial)")
    parser.add_argument("--export", metavar="PATH",
                        help="write result rows to PATH (.json or .csv)")
    parser.add_argument("--policies", "--policy", nargs="+", metavar="POLICY",
                        help="policy presets for `sweep`/`compile`/"
                             "`profile` "
                             f"(default: {' '.join(DEFAULT_POLICIES)})")
    parser.add_argument("--machine", default="nisq",
                        choices=["nisq", "nisq-full", "ft", "ideal"],
                        help="machine kind for `sweep`/`compile`")
    parser.add_argument("--machine-qubits", type=int, metavar="N",
                        help="fixed machine size (default: autosize)")
    parser.add_argument("--grid", nargs=2, type=int, metavar=("ROWS", "COLS"),
                        help="explicit lattice dimensions (NISQ/FT)")
    parser.add_argument("--start-qubits", type=int, default=64, metavar="N",
                        help="initial machine size when autosizing")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="persistent result cache directory; repeated "
                             "jobs are served from disk across runs")
    parser.add_argument("--host", default="127.0.0.1", metavar="ADDR",
                        help="bind address for `serve`")
    parser.add_argument("--port", type=int, default=8731, metavar="PORT",
                        help="TCP port for `serve` (0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="worker threads draining the job queue "
                             "(`serve` only)")
    parser.add_argument("--queue-size", type=int, default=64, metavar="N",
                        help="job queue capacity before submissions get a "
                             "503 back-pressure error (`serve` only)")
    parser.add_argument("--cache-max-bytes", type=int, metavar="BYTES",
                        help="disk cache size cap; overflow evicts "
                             "least-recently-used results (`serve` only)")
    parser.add_argument("--tenants", metavar="PATH",
                        help="tenant registry JSON file (API keys, roles, "
                             "quotas) for `serve`; keyless requests map to "
                             "the anonymous tenant")
    parser.add_argument("--store-dir", metavar="DIR",
                        help="durable job-journal directory for `serve`; "
                             "restarting on the same directory resumes "
                             "queued work and re-serves finished results")
    parser.add_argument("--burst-half-life", type=float, default=None,
                        metavar="SECONDS",
                        help="fair-share burst-score half-life for `serve` "
                             "(default 30; lower forgives floods faster)")
    parser.add_argument("--verify", action="store_true",
                        help="run the static compilation verifier over "
                             "every result (`serve` only; job payloads "
                             "carry the verification report)")
    parser.add_argument("--log-path", metavar="PATH",
                        help="rotating JSONL event-log sink for `serve` "
                             "(the in-memory ring and GET /logs work "
                             "either way)")
    parser.add_argument("--api-key", metavar="KEY",
                        help="tenant API key sent as X-Repro-Key by "
                             "`cluster-sweep`, `cluster-stats`, `metrics`, "
                             "`trace`, `logs` and `tune`")
    parser.add_argument("--endpoint", action="append", metavar="URL",
                        help="compile-server URL for `cluster-sweep`, "
                             "`cluster-stats`, `metrics`, `trace`, `logs` "
                             "and `tune`; repeat for each worker in the "
                             "fleet")
    parser.add_argument("--trace", metavar="ID",
                        help="trace-id filter for `logs` (omit to query "
                             "events across all traces)")
    parser.add_argument("--level", metavar="LEVEL",
                        help="minimum severity for `logs`: DEBUG, INFO, "
                             "WARNING or ERROR")
    parser.add_argument("--tenant", metavar="NAME",
                        help="tenant-name filter for `logs`")
    parser.add_argument("--since", type=float, metavar="TS",
                        help="only events after this wall-clock unix "
                             "timestamp (`logs`)")
    parser.add_argument("--limit", type=int, metavar="N",
                        help="keep only the newest N events (`logs`)")
    parser.add_argument("--suite", metavar="NAME",
                        help="benchmark suite for `bench compare` / "
                             "`bench trend`, e.g. telemetry")
    parser.add_argument("--baseline", metavar="PATH",
                        help="baseline snapshot for `bench compare` "
                             "(default: the newest history record)")
    parser.add_argument("--bench-file", metavar="PATH",
                        help="current snapshot for `bench compare` "
                             "(default: BENCH_<suite>.json)")
    parser.add_argument("--history", metavar="DIR",
                        help="bench history journal directory "
                             "(default: bench_history)")
    parser.add_argument("--metric", action="append", metavar="NAME",
                        help="dotted metric name(s) for `bench trend`; "
                             "repeat for several columns")
    parser.add_argument("--strategy", default="halving",
                        choices=["halving", "grid", "random"],
                        help="search strategy for `tune` (halving races "
                             "candidates up the --scales ladder)")
    parser.add_argument("--trials", type=int, metavar="N",
                        help="candidate sample size for `tune` "
                             "(default: the full policy grid)")
    parser.add_argument("--seed", type=int, default=0, metavar="S",
                        help="seed for `tune` candidate sampling")
    parser.add_argument("--objective", action="append", metavar="OBJ",
                        help="tuning objective(s), e.g. `aqv`, `max:gates`, "
                             "`qubits*2` (default: aqv); repeat for "
                             "multi-objective Pareto runs")
    parser.add_argument("--scales", nargs="+", metavar="SCALE",
                        help="benchmark scale ladder for `tune` "
                             "(default: quick laptop)")
    parser.add_argument("--journal", metavar="PATH",
                        help="append-only JSONL trial journal for `tune`; "
                             "rerun with the same path to resume a killed "
                             "run without recompiling")
    parser.add_argument("--export-best", metavar="PATH",
                        help="write the winning preset-compatible config "
                             "dict to PATH (`tune` only)")
    args = parser.parse_args(argv)

    if args.experiment != "serve":
        if args.host != "127.0.0.1" or args.port != 8731:
            parser.error("--host/--port only apply to `serve`")
        if args.workers != 2 or args.queue_size != 64 \
                or args.cache_max_bytes is not None:
            parser.error("--workers/--queue-size/--cache-max-bytes only "
                         "apply to `serve`")
        if args.tenants or args.store_dir \
                or args.burst_half_life is not None:
            parser.error("--tenants/--store-dir/--burst-half-life only "
                         "apply to `serve`")
        if args.verify:
            parser.error("--verify only applies to `serve`; use the "
                         "`verify` command for local sweeps")
        if args.log_path:
            parser.error("--log-path only applies to `serve`")
    if args.experiment not in ("cluster-sweep", "cluster-stats", "tune",
                               "metrics", "trace", "logs"):
        if args.endpoint:
            parser.error("--endpoint only applies to `cluster-sweep`, "
                         "`cluster-stats`, `metrics`, `trace`, `logs` "
                         "and `tune`")
        if args.api_key:
            parser.error("--api-key only applies to `cluster-sweep`, "
                         "`cluster-stats`, `metrics`, `trace`, `logs` "
                         "and `tune`")
    if args.experiment != "logs":
        for flag, given in (("--trace", args.trace),
                            ("--level", args.level),
                            ("--tenant", args.tenant),
                            ("--since", args.since is not None),
                            ("--limit", args.limit is not None)):
            if given:
                parser.error(f"{flag} only applies to `logs`")
    if args.experiment != "bench":
        for flag, given in (("--suite", args.suite),
                            ("--baseline", args.baseline),
                            ("--bench-file", args.bench_file),
                            ("--history", args.history),
                            ("--metric", args.metric)):
            if given:
                parser.error(f"{flag} only applies to `bench`")
    if args.experiment != "tune":
        for flag, given in (("--strategy", args.strategy != "halving"),
                            ("--trials", args.trials is not None),
                            ("--seed", args.seed != 0),
                            ("--objective", args.objective),
                            ("--scales", args.scales),
                            ("--journal", args.journal),
                            ("--export-best", args.export_best)):
            if given:
                parser.error(f"{flag} only applies to `tune`")
    if args.experiment == "cluster-stats":
        if not args.endpoint:
            parser.error("cluster-stats needs at least one --endpoint URL "
                         "(repeat the flag for each worker)")
        print(_run_cluster_stats(args))
        return 0
    if args.experiment == "metrics":
        if not args.endpoint:
            parser.error("metrics needs at least one --endpoint URL "
                         "(one prints that worker's exposition verbatim; "
                         "several print the merged fleet exposition)")
        # No trailing print()-added newline padding: the exposition is
        # machine-readable and already ends with exactly one newline.
        sys.stdout.write(_run_metrics(args))
        return 0
    if args.experiment == "trace":
        if not args.endpoint:
            parser.error("trace needs at least one --endpoint URL "
                         "(one renders that worker's view; several "
                         "render the merged fleet waterfall)")
        if len(args.names) != 1:
            parser.error("trace takes exactly one trace id, e.g. "
                         "`python -m repro.experiments trace <id> "
                         "--endpoint http://127.0.0.1:8731` "
                         "(cluster-sweep prints its id when it starts)")
        text, code = _run_trace(args)
        sys.stdout.write(text)
        return code
    if args.experiment == "logs":
        if not args.endpoint:
            parser.error("logs needs at least one --endpoint URL "
                         "(one queries that worker's /logs; several "
                         "merge the fleet's events)")
        if args.names:
            parser.error("logs takes no positional names; filter with "
                         "--trace/--tenant/--level/--since/--limit")
        text, code = _run_logs(args)
        sys.stdout.write(text)
        return code
    if args.experiment == "bench":
        if len(args.names) != 1 or args.names[0] not in ("list", "compare",
                                                         "trend"):
            parser.error("bench takes exactly one action: list, compare "
                         "or trend, e.g. `python -m repro.experiments "
                         "bench compare --suite telemetry`")
        text, code = _run_bench(args)
        sys.stdout.write(text)
        return code
    if args.experiment == "profile":
        if args.jobs != 1 or args.cache_dir:
            parser.error("--jobs/--cache-dir do not apply to `profile`; "
                         "phase timings only exist on fresh in-process "
                         "compiles")
        text, rows = _run_profile(args)
        print(text)
        if args.export:
            from repro.analysis.report import export_rows

            export_rows(rows, path=args.export)
            print(f"[exported {len(rows)} rows to {args.export}]")
        return 0
    if args.experiment == "tune":
        if args.endpoint and (args.jobs != 1 or args.cache_dir):
            parser.error("--jobs/--cache-dir do not apply to a cluster "
                         "`tune`; compilation (and caching) happens on "
                         "the servers")
        if args.scale != "laptop":
            parser.error("tune races its own --scales ladder; "
                         "--scale does not apply")
        if args.policies:
            parser.error("--policies does not apply to `tune`; the "
                         "search space is every registered allocation x "
                         "reclamation pair")
        if args.trials is not None and args.strategy == "grid":
            parser.error("--trials does not apply to --strategy grid "
                         "(the grid is exhaustive); use random or "
                         "halving to cap the candidate count")
        if args.trials is not None and args.trials < 1:
            parser.error(f"--trials must be >= 1, got {args.trials}")
        text, _ = _run_tune(args)
        print(text)
        return 0
    if args.experiment == "cluster-sweep":
        if not args.endpoint:
            parser.error("cluster-sweep needs at least one --endpoint URL "
                         "(repeat the flag for each worker)")
        if args.jobs != 1 or args.cache_dir:
            parser.error("--jobs/--cache-dir do not apply to "
                         "`cluster-sweep`; compilation (and caching) "
                         "happens on the servers")
        text, rows = _run_cluster_sweep(args)
        print(text)
        if args.export:
            from repro.analysis.report import export_rows

            export_rows(rows, path=args.export)
            print(f"[exported {len(rows)} rows to {args.export}]")
        return 0
    if args.experiment == "serve":
        for flag, given in (("--export", args.export),
                            ("--scale", args.scale != "laptop"),
                            ("benchmark names", args.names),
                            ("--policies", args.policies),
                            ("--machine", args.machine != "nisq"),
                            ("--machine-qubits",
                             args.machine_qubits is not None),
                            ("--grid", args.grid),
                            ("--start-qubits", args.start_qubits != 64)):
            if given:
                parser.error(f"{flag} does not apply to `serve`; clients "
                             f"choose per request")
        from repro.service import serve

        serve(args.host, args.port, jobs=args.jobs,
              cache_dir=args.cache_dir,
              cache_max_bytes=args.cache_max_bytes,
              workers=args.workers, queue_size=args.queue_size,
              tenants=args.tenants, store_dir=args.store_dir,
              burst_half_life=args.burst_half_life,
              verify=args.verify, log_path=args.log_path)
        return 0

    if args.experiment not in ("sweep", "compile", "verify"):
        ignored = []
        if args.names:
            ignored.append("benchmark names")
        if args.policies:
            ignored.append("--policies")
        if args.machine != "nisq":
            ignored.append("--machine")
        if args.machine_qubits is not None:
            ignored.append("--machine-qubits")
        if args.grid:
            ignored.append("--grid")
        if args.start_qubits != 64:
            ignored.append("--start-qubits")
        if ignored:
            parser.error(
                f"{', '.join(ignored)} only apply to `sweep`, `compile` "
                f"and `verify`; {args.experiment!r} runs its fixed "
                f"benchmark/policy/machine grid"
            )

    session = Session(jobs=args.jobs, cache_dir=args.cache_dir,
                      verify=(args.experiment == "verify"))
    exported_rows: list = []
    exit_code = 0
    if args.experiment == "sweep":
        text, rows = _run_sweep(session, args)
        print(text)
        exported_rows = rows
    elif args.experiment == "verify":
        text, rows, exit_code = _run_verify(session, args)
        print(text)
        exported_rows = rows
    elif args.experiment == "compile":
        text, rows = _run_compile(session, args)
        print(text)
        exported_rows = rows
    else:
        names = (sorted(EXPERIMENTS) if args.experiment == "all"
                 else [args.experiment])
        for name in names:
            text, rows = _run_experiment(name, session, args)
            print(text)
            exported_rows.extend(rows)

    if args.export:
        from repro.analysis.report import export_rows

        export_rows(exported_rows, path=args.export)
        print(f"[exported {len(exported_rows)} rows to {args.export}]")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
