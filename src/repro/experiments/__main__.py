"""Command-line entry point: ``python -m repro.experiments <name> [...]``.

Examples::

    python -m repro.experiments table3
    python -m repro.experiments figure9 --scale quick
    python -m repro.experiments all --scale quick
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS


def _run_one(name: str, scale: str, shots: int) -> str:
    runner, formatter = EXPERIMENTS[name]
    kwargs = {}
    if name in ("figure1", "figure9", "figure10"):
        kwargs["scale"] = scale
    if name == "figure8c":
        kwargs["shots"] = shots
    started = time.perf_counter()
    experiment = runner(**kwargs)
    elapsed = time.perf_counter() - started
    return formatter(experiment) + f"\n[{name} completed in {elapsed:.1f}s]\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the tables and figures of the SQUARE paper.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--scale", default="laptop",
                        choices=["quick", "laptop", "paper"],
                        help="benchmark size scale for the large benchmarks")
    parser.add_argument("--shots", type=int, default=2048,
                        help="shots for the noise-simulation experiment")
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(_run_one(name, args.scale, args.shots))
    return 0


if __name__ == "__main__":
    sys.exit(main())
