"""Cross-policy comparison metrics (AQV ratios, normalisation, averages)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.result import CompilationResult


def normalized_aqv(results: Mapping[str, CompilationResult],
                   baseline: str = "lazy") -> Dict[str, float]:
    """AQV of every policy divided by the baseline policy's AQV.

    This is the quantity plotted in Figures 9 and 10 (normalised to Lazy).
    """
    if baseline not in results:
        raise KeyError(f"baseline policy {baseline!r} missing from results")
    base = results[baseline].active_quantum_volume
    if base <= 0:
        return {name: 1.0 for name in results}
    return {
        name: result.active_quantum_volume / base
        for name, result in results.items()
    }


def improvement_factor(baseline: float, improved: float) -> float:
    """How many times better ``improved`` is than ``baseline`` (lower=better)."""
    if improved <= 0:
        return math.inf
    return baseline / improved


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, ignoring non-positive entries."""
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain mean (0.0 for an empty sequence)."""
    if not values:
        return 0.0
    return sum(values) / len(values)


@dataclass(frozen=True)
class PolicyComparison:
    """Summary of one benchmark compiled under several policies.

    Attributes:
        benchmark: Benchmark name.
        results: Policy name -> compilation result.
    """

    benchmark: str
    results: Mapping[str, CompilationResult]

    def aqv(self, policy: str) -> int:
        """AQV of one policy."""
        return self.results[policy].active_quantum_volume

    def aqv_reduction_vs(self, policy: str, baseline: str = "lazy") -> float:
        """Factor by which ``policy`` reduces AQV relative to ``baseline``."""
        return improvement_factor(self.aqv(baseline), self.aqv(policy))

    def table_row(self) -> List[Dict[str, object]]:
        """Rows in the format of Table III (one per policy)."""
        rows = []
        for policy, result in self.results.items():
            rows.append({
                "benchmark": self.benchmark,
                "policy": policy,
                "gates": result.gate_count,
                "qubits": result.num_qubits_used,
                "depth": result.circuit_depth,
                "swaps": result.swap_count,
                "aqv": result.active_quantum_volume,
            })
        return rows


def average_reduction(comparisons: Iterable[PolicyComparison], policy: str,
                      baseline: str = "lazy") -> float:
    """Mean AQV-reduction factor of ``policy`` vs ``baseline`` over benchmarks."""
    factors = [c.aqv_reduction_vs(policy, baseline) for c in comparisons]
    return arithmetic_mean(factors)
