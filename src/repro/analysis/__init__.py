"""Analysis utilities: AQV comparisons, usage curves, report tables."""

from repro.analysis.liveness import UsageCurve, ascii_plot, usage_curve
from repro.analysis.metrics import (
    PolicyComparison,
    arithmetic_mean,
    average_reduction,
    geometric_mean,
    improvement_factor,
    normalized_aqv,
)
from repro.analysis.report import export_rows, format_comparison, format_table

__all__ = [
    "PolicyComparison",
    "UsageCurve",
    "arithmetic_mean",
    "ascii_plot",
    "average_reduction",
    "export_rows",
    "format_comparison",
    "format_table",
    "geometric_mean",
    "improvement_factor",
    "normalized_aqv",
    "usage_curve",
]
