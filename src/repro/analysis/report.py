"""Plain-text report tables and row export for the experiment harness."""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, List, Mapping, Optional, Sequence


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 floatfmt: str = ".3f") -> str:
    """Render a list of dict rows as an aligned text table.

    Args:
        rows: Table rows; every row is a mapping from column name to value.
        columns: Column order; defaults to the keys of the first row.
        floatfmt: Format spec applied to float values.
    """
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    rendered = [[render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].rjust(widths[i]) for i in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator] + body)


def format_comparison(title: str, rows: Sequence[Mapping[str, object]],
                      columns: Optional[Sequence[str]] = None) -> str:
    """A titled table block."""
    table = format_table(rows, columns)
    underline = "=" * len(title)
    return f"{title}\n{underline}\n{table}\n"


def export_rows(rows: Sequence[Mapping[str, object]],
                path: Optional[str] = None,
                fmt: Optional[str] = None) -> str:
    """Serialize table rows as JSON or CSV, optionally writing a file.

    Args:
        rows: Table rows (mappings from column name to value).
        path: Optional output file; the serialized text is returned
            either way.
        fmt: ``"json"`` or ``"csv"``; inferred from the ``path``
            extension when omitted (defaulting to JSON).

    Raises:
        ValueError: On an unrecognised format.
    """
    if fmt is None:
        if path and path.lower().endswith(".csv"):
            fmt = "csv"
        else:
            fmt = "json"
    if fmt == "json":
        text = json.dumps([dict(row) for row in rows], indent=2,
                          default=str) + "\n"
    elif fmt == "csv":
        columns: List[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=columns, lineterminator="\n")
        writer.writeheader()
        for row in rows:
            writer.writerow(dict(row))
        text = buffer.getvalue()
    else:
        raise ValueError(f"unknown export format {fmt!r}; use json or csv")
    if path:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
