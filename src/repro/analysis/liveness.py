"""Qubit-usage-over-time analysis (the Figure 1 curves)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.result import CompilationResult


@dataclass(frozen=True)
class UsageCurve:
    """A piecewise-constant qubit-usage curve.

    Attributes:
        label: Curve label (usually the policy name).
        points: (time, live-qubit-count) breakpoints, time-ascending.
    """

    label: str
    points: Tuple[Tuple[int, int], ...]

    @property
    def peak(self) -> int:
        """Maximum number of simultaneously live qubits."""
        return max((count for _, count in self.points), default=0)

    @property
    def end_time(self) -> int:
        """Time of the last breakpoint."""
        return self.points[-1][0] if self.points else 0

    def area(self) -> int:
        """Area under the curve; equals the active quantum volume."""
        total = 0
        for (t0, live), (t1, _next_live) in zip(self.points, self.points[1:]):
            total += live * (t1 - t0)
        return total

    def value_at(self, time: int) -> int:
        """Live-qubit count at ``time`` (0 before the first breakpoint)."""
        live = 0
        for t, count in self.points:
            if t > time:
                break
            live = count
        return live

    def resampled(self, num_samples: int = 200) -> List[Tuple[int, int]]:
        """Evenly spaced samples of the curve, convenient for plotting."""
        if num_samples < 2 or not self.points:
            return list(self.points)
        end = max(self.end_time, 1)
        return [
            (int(round(i * end / (num_samples - 1))),
             self.value_at(int(round(i * end / (num_samples - 1)))))
            for i in range(num_samples)
        ]


def usage_curve(result: CompilationResult, label: str = "") -> UsageCurve:
    """Build the usage curve of a compilation result."""
    return UsageCurve(
        label=label or result.policy_name,
        points=tuple(result.usage_series()),
    )


def ascii_plot(curves: Sequence[UsageCurve], width: int = 72,
               height: int = 16) -> str:
    """Render usage curves as an ASCII chart (for CLI experiment output)."""
    if not curves:
        return "(no curves)"
    end = max(curve.end_time for curve in curves) or 1
    peak = max(curve.peak for curve in curves) or 1
    grid = [[" "] * width for _ in range(height)]
    markers = "*+o#@%"
    for index, curve in enumerate(curves):
        marker = markers[index % len(markers)]
        for column in range(width):
            time = int(column * end / (width - 1)) if width > 1 else 0
            value = curve.value_at(time)
            row = height - 1 - int((value / peak) * (height - 1))
            grid[row][column] = marker
    lines = ["".join(row) for row in grid]
    legend = "  ".join(
        f"{markers[i % len(markers)]}={curve.label}" for i, curve in enumerate(curves)
    )
    header = f"qubits (peak={peak})   time 0..{end}"
    return "\n".join([header] + lines + [legend])
