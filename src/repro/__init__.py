"""repro: a from-scratch reproduction of SQUARE (ISCA 2020).

SQUARE (Strategic QUantum Ancilla REuse) is a compiler that decides where
in a modular reversible quantum program to perform uncomputation so that
scratch (ancilla) qubits can be reclaimed and reused, balancing gate cost
against qubit cost on both NISQ and fault-tolerant machines.

Compilation is a service: describe *what* to compile (benchmark or
program, machine spec, policy) and submit it to a :class:`Session`, which
memoizes repeated jobs and can fan batches out over worker processes::

    from repro import MachineSpec, Session, SweepSpec

    session = Session(jobs=4)            # 4 worker processes

    # One benchmark, one policy:
    result = session.compile("ADDER4", machine=MachineSpec.nisq_grid(5, 5),
                             policy="square", decompose_toffoli=True)
    print(result.summary())

    # A full sweep — benchmarks x policies, tabulated and exportable:
    sweep = session.run(SweepSpec()
                        .with_benchmarks("RD53", "6SYM", "ADDER4")
                        .with_machines(MachineSpec.nisq_grid(5, 5))
                        .with_policies("lazy", "eager", "square")
                        .with_config(decompose_toffoli=True))
    print(sweep.table("NISQ benchmarks"))
    sweep.to_csv("results.csv")

Sessions scale past one process: ``Session(cache_dir=...)`` persists
results on disk across restarts, and :mod:`repro.service` serves the
same session over HTTP (``python -m repro.experiments serve``) with a
session-shaped :class:`~repro.service.ServiceClient` on the other end.
Past one *machine*, :mod:`repro.cluster` shards a sweep across a fleet
of servers by fingerprint hash and streams per-entry results back as
workers finish them (``python -m repro.experiments cluster-sweep``).
And because the paper's central finding is that the best policy is
workload-dependent, :mod:`repro.tuner` searches the policy/config
space automatically — racing strategies, Pareto objectives, resumable
trial journals — through any of those backends
(``python -m repro.experiments tune``).

Policies and benchmarks are open registries — see
:func:`repro.core.policies.register_allocation_policy`,
:func:`repro.core.policies.register_reclamation_policy` and
:func:`repro.workloads.register_benchmark`.  The one-shot
:func:`compile_program` helper remains for single compilations of
in-memory programs.
"""

from repro.api import (
    CompileJob,
    MachineSpec,
    ParallelExecutor,
    SerialExecutor,
    Session,
    SweepResult,
    SweepSpec,
)
from repro.arch import (
    FTMachine,
    IdealMachine,
    Machine,
    NISQMachine,
    Topology,
)
from repro.core import (
    POLICY_PRESETS,
    CompilationResult,
    CompilerConfig,
    SquareCompiler,
    compile_program,
    preset,
    register_allocation_policy,
    register_reclamation_policy,
)
from repro.ir import Circuit, ModuleBuilder, Program, QModule
from repro.workloads import register_benchmark

__version__ = "1.2.0"

__all__ = [
    "Circuit",
    "CompilationResult",
    "CompileJob",
    "CompilerConfig",
    "FTMachine",
    "IdealMachine",
    "Machine",
    "MachineSpec",
    "ModuleBuilder",
    "NISQMachine",
    "POLICY_PRESETS",
    "ParallelExecutor",
    "Program",
    "QModule",
    "SerialExecutor",
    "Session",
    "SquareCompiler",
    "SweepResult",
    "SweepSpec",
    "Topology",
    "__version__",
    "compile_program",
    "preset",
    "register_allocation_policy",
    "register_benchmark",
    "register_reclamation_policy",
]
