"""repro: a from-scratch reproduction of SQUARE (ISCA 2020).

SQUARE (Strategic QUantum Ancilla REuse) is a compiler that decides where
in a modular reversible quantum program to perform uncomputation so that
scratch (ancilla) qubits can be reclaimed and reused, balancing gate cost
against qubit cost on both NISQ and fault-tolerant machines.

Typical use::

    from repro import NISQMachine, compile_program
    from repro.workloads import adder4

    program = adder4()
    machine = NISQMachine.grid(5, 5)
    result = compile_program(program, machine, policy="square")
    print(result.summary())
"""

from repro.arch import (
    FTMachine,
    IdealMachine,
    Machine,
    NISQMachine,
    Topology,
)
from repro.core import (
    POLICY_PRESETS,
    CompilationResult,
    CompilerConfig,
    SquareCompiler,
    compile_program,
    preset,
)
from repro.ir import Circuit, ModuleBuilder, Program, QModule

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "CompilationResult",
    "CompilerConfig",
    "FTMachine",
    "IdealMachine",
    "Machine",
    "ModuleBuilder",
    "NISQMachine",
    "POLICY_PRESETS",
    "Program",
    "QModule",
    "SquareCompiler",
    "Topology",
    "__version__",
    "compile_program",
    "preset",
]
