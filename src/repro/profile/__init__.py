"""repro.profile: the deterministic compile-path profiler.

Pairs each compile phase's wall seconds with machine-independent work
counters (gates flattened, router swaps, liveness segments, reclamation
heap decisions) so throughput — gates/sec through a phase — is the
comparable unit across machines and across time.  See
:mod:`repro.profile.profiler` for the model and
``benchmarks/test_bench_compile.py`` for the ``BENCH_compile.json``
artifact this feeds.
"""

from repro.profile.profiler import (
    COUNTER_UNITS,
    PHASE_WORK,
    JobProfile,
    ProfileReport,
    profile_benchmarks,
    profile_results,
    result_counters,
)

__all__ = [
    "COUNTER_UNITS",
    "PHASE_WORK",
    "JobProfile",
    "ProfileReport",
    "profile_benchmarks",
    "profile_results",
    "result_counters",
]
