"""Deterministic compile-path profiler.

Wall-clock profiles do not travel: the same compile is "fast" on one
laptop and "slow" on another, so a regression hidden inside phase noise
is invisible in seconds alone.  This profiler therefore pairs every
phase timing with **machine-independent work counters** pulled from the
:class:`~repro.core.result.CompilationResult` itself — gates flattened,
router swaps inserted, liveness segments tracked, reclamation heap
decisions taken.  The counters are bit-identical across machines and
runs, so two profiles of the same job differ only in their seconds
column, and throughput (``work / seconds``, e.g. gates/sec through the
allocation phase) becomes the comparable unit the compile perf
trajectory is tracked in (``BENCH_compile.json``).

Profiles are built from *fresh in-process* results
(:func:`profile_benchmarks` compiles through
:func:`repro.api.job.execute_job` directly): ``phase_seconds`` is
telemetry excluded from result serialization, so cached or remote
results profile as all-zero phases and are rejected here rather than
silently reported as infinitely fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ExperimentError
from repro.core.result import CompilationResult

#: Phase -> the work counter that phase's throughput is measured in.
#: Ordered like the pipeline; phases missing from a result (older
#: compilers, timing disabled) simply do not appear in its profile.
PHASE_WORK: "Dict[str, str]" = {
    "validate": "gates",
    "allocation": "gates",
    "reclamation": "reclaim_ops",
    "liveness": "liveness_events",
    "mapping_routing": "routed_gates",
}

#: Counter key -> human unit label for tables.
COUNTER_UNITS: Dict[str, str] = {
    "gates": "gates",
    "swaps": "swaps",
    "routed_gates": "gates",
    "reclaim_ops": "ops",
    "liveness_events": "segments",
}


def result_counters(result: CompilationResult) -> Dict[str, int]:
    """Machine-independent work counters for one result.

    Every value is a deterministic function of the program x policy x
    machine triple — rerunning the job on any host reproduces them
    exactly, which is what makes cross-machine throughput comparisons
    meaningful.
    """
    return {
        # Gates flattened out of the modular program (excl. router swaps).
        "gates": int(result.gate_count),
        # Swaps the router inserted while mapping to the lattice.
        "swaps": int(result.swap_count),
        # Gate stream the mapping/routing phase actually scheduled.
        "routed_gates": int(result.gate_count + result.swap_count),
        # Reclamation decisions (one heap/CER evaluation per Free).
        "reclaim_ops": int(result.num_reclamation_points),
        # Qubit lifetime segments the liveness tracker maintained.
        "liveness_events": int(len(result.usage_segments)),
    }


@dataclass(frozen=True)
class JobProfile:
    """Per-phase seconds + work counters for one compiled job.

    Attributes:
        label: Display label, ``benchmark/policy`` by default.
        program_name / policy_name / machine_name: Job coordinates.
        compile_seconds: End-to-end compile wall time.
        phase_seconds: Exclusive seconds per compile phase.
        counters: :func:`result_counters` output.
    """

    label: str
    program_name: str
    policy_name: str
    machine_name: str
    compile_seconds: float
    phase_seconds: Mapping[str, float] = field(default_factory=dict)
    counters: Mapping[str, int] = field(default_factory=dict)

    @classmethod
    def from_result(cls, result: CompilationResult,
                    label: Optional[str] = None) -> "JobProfile":
        """Build a profile from a *fresh* result.

        Raises:
            ExperimentError: The result carries no phase timings —
                typically a cached/deserialized result, whose profile
                would be meaningless.
        """
        if not result.phase_seconds:
            raise ExperimentError(
                f"result for {result.program_name}/{result.policy_name} "
                f"has no phase timings; profile fresh in-process compiles "
                f"(cached and remote results drop phase_seconds)")
        return cls(
            label=label or f"{result.program_name}/{result.policy_name}",
            program_name=result.program_name,
            policy_name=result.policy_name,
            machine_name=result.machine_name,
            compile_seconds=float(result.compile_seconds),
            phase_seconds={name: float(seconds) for name, seconds
                           in sorted(result.phase_seconds.items())},
            counters=result_counters(result),
        )

    # ------------------------------------------------------------------
    def phase_work(self, phase: str) -> int:
        """Work units attributed to ``phase`` (0 for unknown phases)."""
        return int(self.counters.get(PHASE_WORK.get(phase, ""), 0))

    def phase_rate(self, phase: str) -> float:
        """Throughput of ``phase`` in its work units per second.

        0.0 when the phase did no countable work; a phase whose timer
        read zero but did work reports the work count itself (i.e. a
        rate floor of "all of it in under a second").
        """
        work = self.phase_work(phase)
        seconds = float(self.phase_seconds.get(phase, 0.0))
        if work <= 0:
            return 0.0
        if seconds <= 0.0:
            return float(work)
        return work / seconds

    def phase_rates(self) -> Dict[str, float]:
        """``{phase: work units / second}`` for every timed phase."""
        return {phase: self.phase_rate(phase)
                for phase in self.phase_seconds}

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible encoding (keys sorted, floats rounded)."""
        return {
            "label": self.label,
            "program_name": self.program_name,
            "policy_name": self.policy_name,
            "machine_name": self.machine_name,
            "compile_seconds": round(self.compile_seconds, 6),
            "phase_seconds": {name: round(seconds, 6) for name, seconds
                              in sorted(self.phase_seconds.items())},
            "phase_rates": {name: round(rate, 3) for name, rate
                            in sorted(self.phase_rates().items())},
            "counters": dict(sorted(self.counters.items())),
        }


class ProfileReport:
    """A set of :class:`JobProfile` records plus ranked hotspot views.

    The report's orderings are deterministic: hotspots rank by seconds
    with (label, phase) as the tie-break, so two runs that happen to
    time a pair of phases identically still render the same table.
    """

    def __init__(self, profiles: Sequence[JobProfile]) -> None:
        self.profiles: Tuple[JobProfile, ...] = tuple(profiles)

    def __len__(self) -> int:
        return len(self.profiles)

    def __iter__(self):
        return iter(self.profiles)

    # ------------------------------------------------------------------
    def total_seconds(self) -> float:
        """Summed end-to-end compile seconds across every profile."""
        return sum(profile.compile_seconds for profile in self.profiles)

    def phase_totals(self) -> Dict[str, float]:
        """Summed seconds per phase across every profile (sorted keys)."""
        totals: Dict[str, float] = {}
        for profile in self.profiles:
            for phase, seconds in profile.phase_seconds.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return dict(sorted(totals.items()))

    def hotspots(self, top: Optional[int] = None) -> List[Dict[str, object]]:
        """Ranked (job, phase) cells, hottest first.

        Each row carries the cell's seconds, its share of the report's
        total phase time, the phase's work count and throughput — the
        table that answers "where does compile time actually go?".
        """
        grand = sum(self.phase_totals().values()) or 1.0
        rows = []
        for profile in self.profiles:
            for phase, seconds in profile.phase_seconds.items():
                rows.append({
                    "label": profile.label,
                    "phase": phase,
                    "seconds": seconds,
                    "share": seconds / grand,
                    "work": profile.phase_work(phase),
                    "unit": COUNTER_UNITS.get(
                        PHASE_WORK.get(phase, ""), "units"),
                    "rate": profile.phase_rate(phase),
                })
        rows.sort(key=lambda row: (-row["seconds"], row["label"],
                                   row["phase"]))
        return rows if top is None else rows[:top]

    def table(self, title: str = "Compile-path profile",
              top: Optional[int] = None) -> str:
        """Deterministic fixed-width hotspot table."""
        header = ("job", "phase", "seconds", "share", "work", "rate/s")
        body: List[Tuple[str, ...]] = []
        for row in self.hotspots(top):
            body.append((
                row["label"],
                row["phase"],
                f"{row['seconds']:.4f}",
                f"{row['share'] * 100:5.1f}%",
                f"{row['work']} {row['unit']}",
                f"{row['rate']:.0f}",
            ))
        widths = [max(len(header[col]),
                      *(len(line[col]) for line in body or [header]))
                  for col in range(len(header))]
        lines = [title,
                 "  ".join(name.ljust(width)
                           for name, width in zip(header, widths))]
        lines.append("  ".join("-" * width for width in widths))
        for line in body:
            lines.append("  ".join(cell.ljust(width)
                                   for cell, width in zip(line, widths)))
        lines.append(f"total: {self.total_seconds():.4f}s across "
                     f"{len(self.profiles)} job(s)")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible encoding of the whole report."""
        return {
            "jobs": [profile.to_dict() for profile in self.profiles],
            "phase_totals": {phase: round(seconds, 6) for phase, seconds
                             in self.phase_totals().items()},
            "total_seconds": round(self.total_seconds(), 6),
        }

    def __repr__(self) -> str:
        return (f"ProfileReport(jobs={len(self.profiles)}, "
                f"total={self.total_seconds():.3f}s)")


# ----------------------------------------------------------------------
def profile_results(results: Iterable[CompilationResult],
                    labels: Optional[Sequence[str]] = None
                    ) -> ProfileReport:
    """Wrap already-compiled fresh results into a report."""
    results = list(results)
    if labels is None:
        labels = [None] * len(results)
    return ProfileReport([JobProfile.from_result(result, label)
                          for result, label in zip(results, labels)])


def profile_benchmarks(names: Sequence[str], machine, *,
                       policies: Sequence[str] = ("square",),
                       scale: str = "quick") -> ProfileReport:
    """Compile ``names`` x ``policies`` fresh and profile every job.

    Compilation happens in-process through
    :func:`repro.api.job.execute_job` — never through a session cache —
    so every result carries live phase timings.  ``machine`` is a
    :class:`~repro.api.job.MachineSpec`.
    """
    from repro.api.job import CompileJob, execute_job
    from repro.workloads.registry import benchmark_overrides

    profiles: List[JobProfile] = []
    for name in names:
        overrides = benchmark_overrides(name, scale)
        for policy in policies:
            job = CompileJob.for_benchmark(name, machine, policy,
                                           overrides=overrides)
            result = execute_job(job)
            profiles.append(JobProfile.from_result(
                result, label=f"{job.program_label}/{policy}"))
    return ProfileReport(profiles)
