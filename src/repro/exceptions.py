"""Exception hierarchy for the SQUARE reproduction library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Raised for malformed circuits, modules, or programs."""


class UnknownGateError(IRError):
    """Raised when a gate name is not part of the supported gate set."""


class NonClassicalGateError(IRError):
    """Raised when a classical-only operation meets a non-classical gate.

    Classical reversible simulation and automatic uncomputation only make
    sense for circuits built from NOT / CNOT / Toffoli / SWAP gates (see
    Section II-D of the paper).
    """


class IrreversibleBlockError(IRError):
    """Raised when a block that must be invertible contains a measurement."""


class QubitBindingError(IRError):
    """Raised when a statement references a qubit that is not in scope."""


class ValidationError(IRError):
    """Raised when a module or program fails structural validation."""


class ArchitectureError(ReproError):
    """Raised for invalid machine topologies or placement requests."""


class RoutingError(ArchitectureError):
    """Raised when a route between two physical sites cannot be found."""


class ResourceExhaustedError(ReproError):
    """Raised when a program needs more qubits than the machine provides."""


class CompilationError(ReproError):
    """Raised when the SQUARE compiler cannot process a program."""


class SimulationError(ReproError):
    """Raised by the state-vector or classical simulators."""


class ExperimentError(ReproError):
    """Raised when an experiment harness is misconfigured."""


class ServiceError(ReproError):
    """Raised when the compilation service (client or server) fails.

    Covers transport problems (service unreachable), protocol problems
    (malformed request/response payloads) and server-side faults reported
    over HTTP.  Compile-job failures themselves are *not* service errors:
    they come back as structured :class:`repro.core.result.JobFailure`
    entries and re-raise as the original library exception type.
    """


class BackPressureError(ServiceError):
    """Raised when the job queue rejects a submission because it is full.

    This is the service's structured back-pressure signal (HTTP 503 on
    the wire): the request was well-formed but the server is saturated,
    so the client should retry later rather than treat it as a bad
    request.

    Attributes:
        depth: Number of jobs waiting in the queue at rejection time.
        capacity: The queue's configured maximum depth.
    """

    def __init__(self, message: str, *, depth: int = 0,
                 capacity: int = 0) -> None:
        super().__init__(message)
        self.depth = depth
        self.capacity = capacity


class AuthError(ServiceError):
    """Raised when a request's API key resolves to no known tenant.

    The ``X-Repro-Key`` header named a credential the server's
    :class:`repro.tenancy.tenants.TenantRegistry` does not know.  Maps
    to HTTP 401 on the wire.  Requests *without* a key are not an
    error: they resolve to the registry's default (anonymous) tenant.
    """


class QuotaExceededError(BackPressureError):
    """Raised when one tenant's queued-job quota rejects a submission.

    The per-tenant twin of :class:`BackPressureError` (HTTP 429 on the
    wire, not 503): the *server* has capacity, but this tenant already
    has ``max_queued`` jobs waiting.  Other tenants keep submitting —
    which is the point: one noisy tenant's flood back-pressures only
    itself.

    Attributes:
        tenant: Name of the tenant whose quota rejected the push.
        depth: The tenant's waiting-job count at rejection time.
        capacity: The tenant's configured ``max_queued`` cap.
    """

    def __init__(self, message: str, *, tenant: str = "",
                 depth: int = 0, capacity: int = 0) -> None:
        super().__init__(message, depth=depth, capacity=capacity)
        self.tenant = tenant


class ClusterError(ServiceError):
    """Raised when a multi-server sweep cannot be completed.

    Signals cluster-level exhaustion — no live workers remain, or the
    re-dispatch budget ran out with jobs still unfinished — rather than
    any single job's failure (those stay structured
    :class:`repro.core.result.JobFailure` entries, exactly as in a
    single-server sweep).
    """


class TunerError(ReproError):
    """Raised when a tuning run is misconfigured or cannot proceed.

    Covers malformed search spaces (unknown config fields, empty
    ranges), objective specs naming unknown metrics, journals that do
    not belong to the run trying to resume from them, and runs that end
    with no successful candidate to report.  Failures of *individual
    trials* are not tuner errors: they come back as structured
    :class:`repro.core.result.JobFailure` records and simply disqualify
    their candidate.
    """


class BenchError(ReproError):
    """Raised when a benchmark record or history journal is unusable.

    Covers malformed ``BENCH_*.json`` payloads (no recognisable suite
    or metrics mapping), records claiming a schema version newer than
    this library understands, and compare requests whose baseline
    cannot be located.  Noisy-but-parseable history lines are *not*
    errors: the journal reader skips torn tails and reports how many
    lines it dropped, mirroring the telemetry event-log reader.
    """


class UnknownJobError(ServiceError):
    """Raised when a job id does not name a live queued-job record.

    The id may never have existed, or the record may already have been
    garbage-collected by the manager's finished-job retention policy.
    Maps to HTTP 404 on the wire.
    """
