"""Braid routing simulator for surface-code fault-tolerant machines.

On a surface-code machine (Section II-C1 and V-E of the paper), logical
qubits are laid out on a 2-D grid with routing channels between them.  A
logical CNOT is performed by *braiding*: a path is opened between the two
operand qubits through the channels.  A braid can have arbitrary length
and completes in (roughly) constant time, but two braids may not cross:
a braid whose route intersects an ongoing braid must wait.  The key
difference from swap chains is therefore that braid latency scales with
the number of crossings, not with distance.

The simulator tracks active braids as sets of channel segments with a
time window, detects crossings, queues conflicting braids and reports the
number of conflicts per gate (the ``S`` estimate for FT machines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.arch.topology import Topology

#: A channel segment: an undirected edge between two lattice coordinates.
Segment = Tuple[Tuple[int, int], Tuple[int, int]]


def _segment(a: Tuple[int, int], b: Tuple[int, int]) -> Segment:
    return (a, b) if a <= b else (b, a)


def manhattan_route(start: Tuple[int, int], end: Tuple[int, int]) -> List[Segment]:
    """L-shaped channel route: move along the row first, then the column."""
    segments: List[Segment] = []
    row, col = start
    end_row, end_col = end
    while col != end_col:
        next_col = col + (1 if end_col > col else -1)
        segments.append(_segment((row, col), (row, next_col)))
        col = next_col
    while row != end_row:
        next_row = row + (1 if end_row > row else -1)
        segments.append(_segment((row, col), (next_row, col)))
        row = next_row
    return segments


def route_vertices(start: Tuple[int, int], end: Tuple[int, int]
                   ) -> FrozenSet[Tuple[int, int]]:
    """All lattice coordinates an L-shaped route passes through (inclusive)."""
    vertices = {start, end}
    for a, b in manhattan_route(start, end):
        vertices.add(a)
        vertices.add(b)
    return frozenset(vertices)


@dataclass(frozen=True)
class Braid:
    """An active (or completed) braid.

    Attributes:
        start: Start time of the braid.
        finish: Completion time of the braid.
        vertices: Lattice coordinates the braid's route passes through.
            Two braids conflict ("cross") when their routes share a
            coordinate while their time windows overlap — this catches both
            overlapping and perpendicular routes.
        endpoints: The two lattice coordinates being connected.
    """

    start: int
    finish: int
    vertices: FrozenSet[Tuple[int, int]]
    endpoints: Tuple[Tuple[int, int], Tuple[int, int]]

    def overlaps_time(self, start: int, finish: int) -> bool:
        """True when the braid's window intersects [start, finish)."""
        return self.start < finish and start < self.finish

    def crosses(self, vertices: FrozenSet[Tuple[int, int]]) -> bool:
        """True when the braid's route shares a coordinate with ``vertices``."""
        return not self.vertices.isdisjoint(vertices)


@dataclass(frozen=True)
class BraidRequest:
    """Outcome of routing one braid.

    Attributes:
        start: Time at which the braid could begin (after waiting for
            conflicting braids to clear).
        finish: Completion time.
        crossings: Number of ongoing braids the route conflicted with.
        vertices: Lattice coordinates occupied by the route.
    """

    start: int
    finish: int
    crossings: int
    vertices: FrozenSet[Tuple[int, int]]


class BraidTracker:
    """Tracks ongoing braids, detects crossings and queues conflicts.

    Args:
        topology: Logical-qubit grid topology (provides coordinates).
        braid_duration: Base completion time of a braid, in time units.
        prune_window: Completed braids older than this window (relative to
            the latest finish time seen) are dropped to bound memory.
    """

    def __init__(self, topology: Topology, braid_duration: int = 2,
                 prune_window: int = 512) -> None:
        self._topology = topology
        self._braid_duration = braid_duration
        self._prune_window = prune_window
        self._active: List[Braid] = []
        self._latest_finish = 0
        self.total_braids = 0
        self.total_crossings = 0

    # ------------------------------------------------------------------
    @property
    def braid_duration(self) -> int:
        """Base braid completion time."""
        return self._braid_duration

    @property
    def active_braids(self) -> Tuple[Braid, ...]:
        """Currently tracked braids (recent window)."""
        return tuple(self._active)

    def reset(self) -> None:
        """Forget all braids and statistics."""
        self._active.clear()
        self._latest_finish = 0
        self.total_braids = 0
        self.total_crossings = 0

    # ------------------------------------------------------------------
    def request(self, site_a: int, site_b: int, earliest_start: int) -> BraidRequest:
        """Route a braid between two logical sites.

        The braid starts no earlier than ``earliest_start``; if its route
        crosses ongoing braids it is queued until the latest conflicting
        braid completes (the route is not re-planned, matching the paper's
        "queued until its route has been cleared" description).
        """
        coord_a = self._topology.coordinate(site_a)
        coord_b = self._topology.coordinate(site_b)
        vertices = route_vertices(coord_a, coord_b)
        start = earliest_start
        finish = start + self._braid_duration

        conflicts = [
            braid for braid in self._active
            if braid.overlaps_time(start, finish) and braid.crosses(vertices)
        ]
        if conflicts:
            start = max(braid.finish for braid in conflicts)
            finish = start + self._braid_duration

        braid = Braid(start=start, finish=finish, vertices=vertices,
                      endpoints=(coord_a, coord_b))
        self._active.append(braid)
        self._latest_finish = max(self._latest_finish, finish)
        self.total_braids += 1
        self.total_crossings += len(conflicts)
        self._prune()
        return BraidRequest(start=start, finish=finish, crossings=len(conflicts),
                            vertices=vertices)

    def average_crossings(self) -> float:
        """Mean crossings per braid routed so far."""
        if self.total_braids == 0:
            return 0.0
        return self.total_crossings / self.total_braids

    # ------------------------------------------------------------------
    def _prune(self) -> None:
        horizon = self._latest_finish - self._prune_window
        if horizon <= 0:
            return
        if len(self._active) > 256:
            self._active = [b for b in self._active if b.finish >= horizon]
