"""Machine architecture models: topologies, routing, NISQ and FT machines."""

from repro.arch.braid import Braid, BraidRequest, BraidTracker, manhattan_route
from repro.arch.ft import FT_GATE_DURATIONS, FTMachine
from repro.arch.machine import (
    DEFAULT_GATE_DURATIONS,
    CommunicationResult,
    IdealMachine,
    Machine,
)
from repro.arch.mapping import Layout
from repro.arch.nisq import (
    IBM_SUPERCONDUCTING,
    IONQ_TRAPPED_ION,
    SIMULATION_NOISE,
    NISQMachine,
    NoiseParameters,
)
from repro.arch.routing import Route, SwapRouter, SwapStep
from repro.arch.topology import Topology

__all__ = [
    "Braid",
    "BraidRequest",
    "BraidTracker",
    "CommunicationResult",
    "DEFAULT_GATE_DURATIONS",
    "FTMachine",
    "FT_GATE_DURATIONS",
    "IBM_SUPERCONDUCTING",
    "IONQ_TRAPPED_ION",
    "IdealMachine",
    "Layout",
    "Machine",
    "NISQMachine",
    "NoiseParameters",
    "Route",
    "SIMULATION_NOISE",
    "SwapRouter",
    "SwapStep",
    "Topology",
    "manhattan_route",
]
