"""Physical qubit topologies (coupling maps).

The paper evaluates NISQ machines with 2-D lattice nearest-neighbour
connectivity, an ideal fully-connected machine (Figure 5), and
fault-tolerant machines whose logical qubits sit on a 2-D grid with
routing channels.  A :class:`Topology` provides sites, adjacency,
coordinates and all-pairs distances used by the router and by the
locality-aware allocation heuristic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import ArchitectureError

Coordinate = Tuple[int, int]


class Topology:
    """A coupling graph over physical sites.

    Args:
        graph: Undirected connectivity graph whose nodes are site indices.
        coordinates: Optional map from site to (row, column) used for
            geometric distance estimates and braid routing.
        name: Human-readable topology name.
    """

    def __init__(
        self,
        graph: "nx.Graph",
        coordinates: Optional[Dict[int, Coordinate]] = None,
        name: str = "custom",
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise ArchitectureError("topology must contain at least one site")
        expected = set(range(graph.number_of_nodes()))
        if set(graph.nodes) != expected:
            raise ArchitectureError(
                "topology sites must be numbered 0..N-1 contiguously"
            )
        if not nx.is_connected(graph):
            raise ArchitectureError("topology must be connected")
        self.name = name
        self._graph = graph
        self._coordinates = dict(coordinates) if coordinates else {
            site: (0, site) for site in graph.nodes
        }
        # Per-source BFS results, filled lazily (avoids an O(N^2) table for
        # the multi-thousand-site machines of Figures 9 and 10).
        self._distance_cache: Dict[int, Dict[int, int]] = {}
        self._grid_like = False  # set by the grid()/line() constructors

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def line(cls, num_sites: int) -> "Topology":
        """A 1-D chain of ``num_sites`` qubits."""
        if num_sites < 1:
            raise ArchitectureError("num_sites must be positive")
        graph = nx.path_graph(num_sites)
        coords = {site: (0, site) for site in range(num_sites)}
        topology = cls(graph, coords, name=f"line-{num_sites}")
        topology._grid_like = True
        return topology

    @classmethod
    def grid(cls, rows: int, cols: int) -> "Topology":
        """A 2-D lattice with nearest-neighbour connectivity."""
        if rows < 1 or cols < 1:
            raise ArchitectureError("grid dimensions must be positive")
        graph = nx.Graph()
        coords: Dict[int, Coordinate] = {}
        for row in range(rows):
            for col in range(cols):
                site = row * cols + col
                graph.add_node(site)
                coords[site] = (row, col)
                if col > 0:
                    graph.add_edge(site, site - 1)
                if row > 0:
                    graph.add_edge(site, site - cols)
        topology = cls(graph, coords, name=f"grid-{rows}x{cols}")
        topology._grid_like = True
        return topology

    @classmethod
    def square_grid_for(cls, num_qubits: int) -> "Topology":
        """Smallest near-square lattice with at least ``num_qubits`` sites."""
        if num_qubits < 1:
            raise ArchitectureError("num_qubits must be positive")
        side = math.isqrt(num_qubits)
        if side * side < num_qubits:
            side += 1
        rows = side
        cols = side
        while (rows - 1) * cols >= num_qubits:
            rows -= 1
        return cls.grid(rows, cols)

    @classmethod
    def fully_connected(cls, num_sites: int) -> "Topology":
        """All-to-all connectivity (no routing cost)."""
        if num_sites < 1:
            raise ArchitectureError("num_sites must be positive")
        graph = nx.complete_graph(num_sites)
        side = max(1, math.isqrt(num_sites))
        coords = {site: divmod(site, side) for site in range(num_sites)}
        return cls(graph, coords, name=f"full-{num_sites}")

    @classmethod
    def from_edges(cls, num_sites: int, edges: Iterable[Tuple[int, int]],
                   name: str = "custom") -> "Topology":
        """Build a topology from an explicit edge list."""
        graph = nx.Graph()
        graph.add_nodes_from(range(num_sites))
        graph.add_edges_from(edges)
        return cls(graph, name=name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_sites(self) -> int:
        """Number of physical sites."""
        return self._graph.number_of_nodes()

    @property
    def graph(self) -> "nx.Graph":
        """The underlying connectivity graph."""
        return self._graph

    @property
    def is_fully_connected(self) -> bool:
        """True when every pair of sites is directly coupled."""
        n = self.num_sites
        return self._graph.number_of_edges() == n * (n - 1) // 2

    def coordinate(self, site: int) -> Coordinate:
        """(row, column) coordinate of ``site``."""
        self._check_site(site)
        return self._coordinates[site]

    def neighbors(self, site: int) -> Tuple[int, ...]:
        """Sites directly coupled to ``site``."""
        self._check_site(site)
        return tuple(sorted(self._graph.neighbors(site)))

    def are_adjacent(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` are directly coupled (or identical)."""
        if a == b:
            return True
        return self._graph.has_edge(a, b)

    def distance(self, a: int, b: int) -> int:
        """Hop distance between two sites (0 for the same site)."""
        self._check_site(a)
        self._check_site(b)
        if a == b:
            return 0
        if self._graph.has_edge(a, b):
            return 1
        if self._grid_like:
            return self.manhattan_distance(a, b)
        return self._distance_from(a)[b]

    def shortest_path(self, a: int, b: int) -> List[int]:
        """One shortest site path from ``a`` to ``b`` inclusive."""
        self._check_site(a)
        self._check_site(b)
        return nx.shortest_path(self._graph, a, b)

    def manhattan_distance(self, a: int, b: int) -> int:
        """Coordinate (Manhattan) distance between two sites."""
        ra, ca = self.coordinate(a)
        rb, cb = self.coordinate(b)
        return abs(ra - rb) + abs(ca - cb)

    def centroid_site(self, sites: Sequence[int]) -> int:
        """Site closest to the coordinate centroid of ``sites``.

        Returns site 0 when ``sites`` is empty.
        """
        if not sites:
            return 0
        rows = [self.coordinate(s)[0] for s in sites]
        cols = [self.coordinate(s)[1] for s in sites]
        target = (sum(rows) / len(rows), sum(cols) / len(cols))
        by_coordinate = self._coordinate_index()
        rounded = (int(round(target[0])), int(round(target[1])))
        if rounded in by_coordinate:
            return by_coordinate[rounded]
        best_site = sites[0]
        best_cost = float("inf")
        for site, (row, col) in self._coordinates.items():
            cost = abs(row - target[0]) + abs(col - target[1])
            if cost < best_cost:
                best_cost = cost
                best_site = site
        return best_site

    def _coordinate_index(self) -> Dict[Coordinate, int]:
        index = getattr(self, "_coordinate_index_cache", None)
        if index is None:
            index = {coord: site for site, coord in self._coordinates.items()}
            self._coordinate_index_cache = index
        return index

    # ------------------------------------------------------------------
    def _distance_from(self, source: int) -> Dict[int, int]:
        cached = self._distance_cache.get(source)
        if cached is None:
            cached = nx.single_source_shortest_path_length(self._graph, source)
            self._distance_cache[source] = cached
        return cached

    def _check_site(self, site: int) -> None:
        if not 0 <= site < self.num_sites:
            raise ArchitectureError(
                f"site {site} out of range for {self.name} "
                f"({self.num_sites} sites)"
            )

    def __repr__(self) -> str:
        return f"Topology({self.name!r}, sites={self.num_sites})"
