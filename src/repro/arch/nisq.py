"""NISQ machine model: 2-D lattice with swap-chain communication.

Models the superconducting-style devices of Section V-C: nearest-neighbour
connectivity on a lattice, long-distance CNOTs resolved by chains of SWAP
gates (three CNOTs each), and per-gate error rates / coherence times taken
from Table IV for the success-rate analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.arch.machine import CommunicationResult, Machine
from repro.arch.routing import SwapRouter
from repro.arch.topology import Topology


@dataclass(frozen=True)
class NoiseParameters:
    """Device noise figures used by the analytical success-rate model.

    Attributes:
        single_qubit_error: Depolarizing error probability per 1-qubit gate.
        two_qubit_error: Depolarizing error probability per 2-qubit gate.
        t1_us: Amplitude-damping (relaxation) time constant, microseconds.
        t2_us: Dephasing time constant, microseconds.
        gate_time_us: Wall-clock duration of one scheduler time unit,
            microseconds (superconducting gates are tens of nanoseconds).
    """

    single_qubit_error: float = 0.001
    two_qubit_error: float = 0.01
    t1_us: float = 50.0
    t2_us: float = 70.0
    gate_time_us: float = 0.05


#: Noise model used by "Our Simulation" in Table IV.
SIMULATION_NOISE = NoiseParameters()

#: Published figures for the IBM superconducting device row of Table IV.
IBM_SUPERCONDUCTING = NoiseParameters(
    single_qubit_error=0.01, two_qubit_error=0.02, t1_us=55.0, t2_us=60.0,
    gate_time_us=0.05,
)

#: Published figures for the IonQ trapped-ion device row of Table IV.
IONQ_TRAPPED_ION = NoiseParameters(
    single_qubit_error=0.01, two_qubit_error=0.02, t1_us=1e6, t2_us=1e6,
    gate_time_us=10.0,
)


class NISQMachine(Machine):
    """A lattice-connected NISQ device with swap-based communication."""

    communication = "swap"

    def __init__(
        self,
        topology: Topology,
        gate_durations: Optional[Mapping[str, int]] = None,
        noise: NoiseParameters = SIMULATION_NOISE,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(topology, gate_durations,
                         name=name or f"nisq-{topology.name}")
        self.noise = noise
        self._router = SwapRouter(topology)

    # ------------------------------------------------------------------
    @classmethod
    def grid(cls, rows: int, cols: int, **kwargs) -> "NISQMachine":
        """A NISQ machine on a ``rows x cols`` lattice."""
        return cls(Topology.grid(rows, cols), **kwargs)

    @classmethod
    def with_qubits(cls, num_qubits: int, **kwargs) -> "NISQMachine":
        """A NISQ machine on the smallest near-square lattice of that size."""
        return cls(Topology.square_grid_for(num_qubits), **kwargs)

    @classmethod
    def fully_connected(cls, num_qubits: int, **kwargs) -> "NISQMachine":
        """A NISQ machine with all-to-all connectivity (no swaps needed)."""
        return cls(Topology.fully_connected(num_qubits), **kwargs)

    # ------------------------------------------------------------------
    @property
    def router(self) -> SwapRouter:
        """The swap router for this machine."""
        return self._router

    def resolve_interaction(
        self, site_a: int, site_b: int, earliest_start: int
    ) -> CommunicationResult:
        """Resolve a long-distance CNOT by a swap chain.

        The returned cost unit is the swap-chain length, which the compiler
        averages into the ``S`` factor of Equations 1 and 2.
        """
        route = self._router.route(site_a, site_b)
        return CommunicationResult(
            swaps=route.swaps,
            extra_latency=0,
            cost_units=float(route.num_swaps),
        )

    def swap_distance(self, site_a: int, site_b: int) -> int:
        """Swaps needed for a gate between two sites right now."""
        return self._router.swap_distance(site_a, site_b)
