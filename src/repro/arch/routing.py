"""Swap-chain routing for NISQ machines.

On a NISQ device a two-qubit gate between non-adjacent physical sites is
resolved by a chain of SWAP gates that moves one operand next to the other
(Section II-C1).  Each SWAP costs three CNOTs; the time to complete the
chain is proportional to its length.  The router computes the chain and
reports the swaps performed so the scheduler can update the layout and the
compiler can maintain its running communication-cost estimate ``S``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import RoutingError
from repro.arch.topology import Topology


@dataclass(frozen=True)
class SwapStep:
    """One SWAP along a routing chain.

    Attributes:
        site_a: First physical site of the swap.
        site_b: Second physical site of the swap.
    """

    site_a: int
    site_b: int


@dataclass(frozen=True)
class Route:
    """A resolved two-qubit interaction.

    Attributes:
        source: Site of the qubit that moves.
        destination: Site of the stationary qubit.
        path: Site path from source to destination inclusive.
        swaps: Swap steps needed to bring the operands adjacent.
    """

    source: int
    destination: int
    path: Tuple[int, ...]
    swaps: Tuple[SwapStep, ...]

    @property
    def num_swaps(self) -> int:
        """Number of swap gates required."""
        return len(self.swaps)

    @property
    def distance(self) -> int:
        """Hop distance between source and destination."""
        return max(len(self.path) - 1, 0)


class SwapRouter:
    """Shortest-path swap-chain router over a :class:`Topology`."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology

    @property
    def topology(self) -> Topology:
        """The routed topology."""
        return self._topology

    def route(self, site_a: int, site_b: int) -> Route:
        """Compute the swap chain that makes ``site_a`` adjacent to ``site_b``.

        The qubit at ``site_a`` is moved along a shortest path until it sits
        next to ``site_b``; the qubit at ``site_b`` stays put.  For adjacent
        (or identical) sites no swaps are needed.

        Raises:
            RoutingError: If no path exists (cannot happen for connected
                topologies, kept for defensive clarity).
        """
        topology = self._topology
        if site_a == site_b or topology.are_adjacent(site_a, site_b):
            return Route(source=site_a, destination=site_b,
                         path=(site_a, site_b) if site_a != site_b else (site_a,),
                         swaps=())
        path = self._shortest_path(site_a, site_b)
        if len(path) < 2:
            raise RoutingError(f"no route between sites {site_a} and {site_b}")
        # Move the source qubit along the path, stopping one hop short of
        # the destination.
        swaps = tuple(
            SwapStep(path[i], path[i + 1]) for i in range(len(path) - 2)
        )
        return Route(source=site_a, destination=site_b, path=tuple(path), swaps=swaps)

    def swap_distance(self, site_a: int, site_b: int) -> int:
        """Number of swaps a gate between these sites would need."""
        if site_a == site_b:
            return 0
        distance = self._topology.distance(site_a, site_b)
        return max(distance - 1, 0)

    def _shortest_path(self, site_a: int, site_b: int) -> List[int]:
        topology = self._topology
        if getattr(topology, "_grid_like", False):
            return self._grid_path(site_a, site_b)
        return topology.shortest_path(site_a, site_b)

    def _grid_path(self, site_a: int, site_b: int) -> List[int]:
        """L-shaped path on a lattice, built from coordinates (no graph search)."""
        topology = self._topology
        index = topology._coordinate_index()
        row_a, col_a = topology.coordinate(site_a)
        row_b, col_b = topology.coordinate(site_b)
        path = [site_a]
        row, col = row_a, col_a
        while col != col_b:
            col += 1 if col_b > col else -1
            path.append(index[(row, col)])
        while row != row_b:
            row += 1 if row_b > row else -1
            path.append(index[(row, col)])
        return path
