"""Abstract machine model shared by the NISQ and FT back-ends.

A machine couples a :class:`~repro.arch.topology.Topology` with a gate
duration table and a communication model.  The scheduler asks the machine
to *resolve* every two-qubit interaction: on a NISQ machine that yields a
swap chain; on a fault-tolerant machine a braid with possible crossing
delays; on an ideal machine nothing at all.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.arch.routing import SwapStep
from repro.arch.topology import Topology
from repro.ir.gates import gate_spec

#: Default logical gate durations, in scheduler time units (one unit is
#: roughly one single-qubit gate time).
DEFAULT_GATE_DURATIONS: Mapping[str, int] = {
    "x": 1, "y": 1, "z": 1, "h": 1, "s": 1, "sdg": 1, "t": 1, "tdg": 1,
    "cx": 2, "cz": 2, "swap": 6, "ccx": 6,
    "measure": 10, "reset": 10, "barrier": 0,
}


@dataclass(frozen=True)
class CommunicationResult:
    """Outcome of resolving one two-qubit interaction.

    Attributes:
        swaps: Swap steps the scheduler must apply before the gate (NISQ).
        extra_latency: Additional latency (time units) beyond the swap chain
            itself, e.g. braid queueing delay on an FT machine.
        cost_units: The communication quantity fed to the CER cost model's
            running average ``S`` — swap-chain length on NISQ, number of
            braid crossings on FT.
    """

    swaps: Tuple[SwapStep, ...] = ()
    extra_latency: int = 0
    cost_units: float = 0.0


class Machine(abc.ABC):
    """Base class for machine models.

    Args:
        topology: Physical site connectivity.
        gate_durations: Optional per-gate duration overrides.
        name: Machine name used in reports.
    """

    #: Communication mechanism, one of "none", "swap", "braid".
    communication = "none"

    def __init__(
        self,
        topology: Topology,
        gate_durations: Optional[Mapping[str, int]] = None,
        name: str = "machine",
    ) -> None:
        self.topology = topology
        self.name = name
        self._durations: Dict[str, int] = dict(DEFAULT_GATE_DURATIONS)
        if gate_durations:
            self._durations.update(gate_durations)

    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Maximum number of qubits the machine offers."""
        return self.topology.num_sites

    def gate_duration(self, name: str) -> int:
        """Logical duration of gate ``name`` in time units."""
        if name in self._durations:
            return self._durations[name]
        return gate_spec(name).duration

    @property
    def swap_duration(self) -> int:
        """Duration of one SWAP gate."""
        return self.gate_duration("swap")

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def resolve_interaction(
        self, site_a: int, site_b: int, earliest_start: int
    ) -> CommunicationResult:
        """Resolve a two-qubit interaction between two physical sites.

        Args:
            site_a: Site of the first operand (the one allowed to move).
            site_b: Site of the second operand.
            earliest_start: Earliest time the interaction could begin given
                data dependencies.

        Returns:
            The communication actions and costs for this interaction.
        """

    def reset_communication_state(self) -> None:
        """Clear any internal communication state (e.g. active braids)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, qubits={self.num_qubits})"


class IdealMachine(Machine):
    """A fully-connected machine with no communication cost.

    Used as the reference point (the "no locality constraint" model that
    prior ancilla-reuse work assumes) and for the fully-connected bars of
    Figure 5.
    """

    communication = "none"

    def __init__(self, num_qubits: int,
                 gate_durations: Optional[Mapping[str, int]] = None) -> None:
        super().__init__(
            Topology.fully_connected(num_qubits),
            gate_durations,
            name=f"ideal-{num_qubits}",
        )

    def resolve_interaction(
        self, site_a: int, site_b: int, earliest_start: int
    ) -> CommunicationResult:
        """All sites are adjacent: no swaps, no delay, zero cost."""
        return CommunicationResult()
