"""Fault-tolerant (surface code) machine model with braid communication.

Logical qubits are laid out on a 2-D grid with one site per qubit and
channels between sites wide enough for braids to pass (Section V-E).
Two-qubit gates are resolved by the :class:`~repro.arch.braid.BraidTracker`;
the communication cost fed back to the CER heuristic is the number of
braid crossings per gate, following Section IV-D.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.arch.braid import BraidTracker
from repro.arch.machine import CommunicationResult, Machine
from repro.arch.topology import Topology

#: Fault-tolerant logical gate durations (in logical cycles).  Clifford
#: gates are cheap; T gates require magic-state consumption and are slower;
#: logical measurement costs about one gate time (Section II-E).
FT_GATE_DURATIONS: Mapping[str, int] = {
    "x": 1, "y": 1, "z": 1, "h": 2, "s": 2, "sdg": 2, "t": 8, "tdg": 8,
    "cx": 2, "cz": 2, "swap": 6, "ccx": 12,
    "measure": 2, "reset": 2, "barrier": 0,
}


class FTMachine(Machine):
    """A surface-code machine whose CNOTs are implemented by braiding."""

    communication = "braid"

    def __init__(
        self,
        topology: Topology,
        gate_durations: Optional[Mapping[str, int]] = None,
        braid_duration: int = 2,
        crossing_penalty: int = 2,
        name: Optional[str] = None,
    ) -> None:
        durations = dict(FT_GATE_DURATIONS)
        if gate_durations:
            durations.update(gate_durations)
        super().__init__(topology, durations, name=name or f"ft-{topology.name}")
        self._crossing_penalty = crossing_penalty
        self._braids = BraidTracker(topology, braid_duration=braid_duration)

    # ------------------------------------------------------------------
    @classmethod
    def grid(cls, rows: int, cols: int, **kwargs) -> "FTMachine":
        """An FT machine with a ``rows x cols`` logical-qubit grid."""
        return cls(Topology.grid(rows, cols), **kwargs)

    @classmethod
    def with_qubits(cls, num_qubits: int, **kwargs) -> "FTMachine":
        """An FT machine on the smallest near-square grid of that size."""
        return cls(Topology.square_grid_for(num_qubits), **kwargs)

    # ------------------------------------------------------------------
    @property
    def braid_tracker(self) -> BraidTracker:
        """The braid simulator attached to this machine."""
        return self._braids

    @property
    def crossing_penalty(self) -> int:
        """Extra latency per braid crossing, in time units."""
        return self._crossing_penalty

    def resolve_interaction(
        self, site_a: int, site_b: int, earliest_start: int
    ) -> CommunicationResult:
        """Resolve a logical CNOT by routing a braid.

        The gate is delayed until conflicting braids clear; the reported
        cost unit is the number of crossings (the FT estimate of ``S``).
        """
        request = self._braids.request(site_a, site_b, earliest_start)
        queue_delay = request.start - earliest_start
        extra = queue_delay + request.crossings * self._crossing_penalty
        return CommunicationResult(
            swaps=(),
            extra_latency=extra,
            cost_units=float(request.crossings),
        )

    def reset_communication_state(self) -> None:
        """Clear the braid tracker between compilations."""
        self._braids.reset()
