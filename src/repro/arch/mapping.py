"""Virtual-to-physical qubit layout.

The compiler works with *virtual* qubit identifiers (one per allocated
machine qubit); the :class:`Layout` records which physical site each one
occupies.  Swap chains move virtual qubits between sites; reclaimed qubits
keep their site (a physical qubit reset to |0> does not move), which is
exactly why locality-aware allocation pays off.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ArchitectureError, ResourceExhaustedError
from repro.arch.topology import Topology


class Layout:
    """Bidirectional virtual-qubit <-> physical-site mapping.

    Args:
        topology: The machine topology whose sites are being assigned.
    """

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._site_of: Dict[int, int] = {}
        self._virtual_at: Dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        """The underlying topology."""
        return self._topology

    @property
    def num_placed(self) -> int:
        """Number of virtual qubits currently placed."""
        return len(self._site_of)

    @property
    def num_free_sites(self) -> int:
        """Number of sites never assigned to a virtual qubit."""
        return self._topology.num_sites - len(self._virtual_at)

    def site_of(self, virtual: int) -> int:
        """Physical site of virtual qubit ``virtual``."""
        try:
            return self._site_of[virtual]
        except KeyError:
            raise ArchitectureError(f"virtual qubit {virtual} is not placed") from None

    def virtual_at(self, site: int) -> Optional[int]:
        """Virtual qubit occupying ``site`` or None if the site is empty."""
        return self._virtual_at.get(site)

    def is_placed(self, virtual: int) -> bool:
        """True when ``virtual`` currently occupies a site."""
        return virtual in self._site_of

    def free_sites(self) -> Tuple[int, ...]:
        """All sites that have never held a virtual qubit, ascending."""
        return tuple(
            site for site in range(self._topology.num_sites)
            if site not in self._virtual_at
        )

    def occupied_sites(self) -> Tuple[int, ...]:
        """Sites currently holding a virtual qubit."""
        return tuple(sorted(self._virtual_at))

    # ------------------------------------------------------------------
    def place(self, virtual: int, site: int) -> None:
        """Assign ``virtual`` to an empty ``site``.

        Raises:
            ArchitectureError: If the qubit is already placed or the site
                is occupied.
        """
        if virtual in self._site_of:
            raise ArchitectureError(f"virtual qubit {virtual} is already placed")
        if site in self._virtual_at:
            raise ArchitectureError(f"site {site} is already occupied")
        self._topology._check_site(site)
        self._site_of[virtual] = site
        self._virtual_at[site] = virtual

    def nearest_free_site(self, anchor_sites: Sequence[int]) -> int:
        """The free site closest (total distance) to ``anchor_sites``.

        With no anchors, returns the lowest-numbered free site.

        Raises:
            ResourceExhaustedError: If every site is occupied.
        """
        candidates = self.nearest_free_sites(anchor_sites, limit=1)
        if not candidates:
            raise ResourceExhaustedError(
                f"machine {self._topology.name} has no free qubit sites"
            )
        return candidates[0]

    def nearest_free_sites(self, anchor_sites: Sequence[int],
                           limit: int = 32) -> List[int]:
        """Up to ``limit`` free sites, closest to ``anchor_sites`` first.

        On grid topologies the search expands rings around the anchor
        centroid, so it stays fast even on multi-thousand-site machines.
        With no anchors the lowest-numbered free sites are returned.
        """
        if limit < 1:
            return []
        topology = self._topology
        if not anchor_sites:
            free = [site for site in range(topology.num_sites)
                    if site not in self._virtual_at]
            return free[:limit]
        if getattr(topology, "_grid_like", False):
            found = self._ring_search(anchor_sites, limit)
            if found:
                return found
        free = [site for site in range(topology.num_sites)
                if site not in self._virtual_at]
        free.sort(key=lambda site: sum(
            topology.distance(site, anchor) for anchor in anchor_sites))
        return free[:limit]

    def _ring_search(self, anchor_sites: Sequence[int], limit: int) -> List[int]:
        """Expand Manhattan rings around the anchor centroid on a grid."""
        topology = self._topology
        index = topology._coordinate_index()
        coords = [topology.coordinate(site) for site in anchor_sites]
        center_row = int(round(sum(r for r, _ in coords) / len(coords)))
        center_col = int(round(sum(c for _, c in coords) / len(coords)))
        found: List[int] = []
        radius = 0
        # The ring radius is bounded by the grid diameter; stop as soon as
        # enough free sites are found or the whole grid has been covered.
        corner_row, corner_col = topology.coordinate(topology.num_sites - 1)
        grid_span = max(corner_row, corner_col) + 1
        while len(found) < limit and radius <= 2 * grid_span:
            ring = self._ring_coordinates(center_row, center_col, radius)
            for coord in ring:
                site = index.get(coord)
                if site is not None and site not in self._virtual_at:
                    found.append(site)
            radius += 1
        return found[:limit]

    @staticmethod
    def _ring_coordinates(center_row: int, center_col: int, radius: int):
        if radius == 0:
            yield (center_row, center_col)
            return
        for offset in range(radius):
            yield (center_row - radius + offset, center_col + offset)
            yield (center_row + offset, center_col + radius - offset)
            yield (center_row + radius - offset, center_col - offset)
            yield (center_row - offset, center_col - radius + offset)

    def swap(self, site_a: int, site_b: int) -> None:
        """Exchange the occupants of two sites (either may be empty)."""
        occupant_a = self._virtual_at.pop(site_a, None)
        occupant_b = self._virtual_at.pop(site_b, None)
        if occupant_a is not None:
            self._virtual_at[site_b] = occupant_a
            self._site_of[occupant_a] = site_b
        if occupant_b is not None:
            self._virtual_at[site_a] = occupant_b
            self._site_of[occupant_b] = site_a

    def area_spread(self, virtual_qubits: Iterable[int]) -> float:
        """Mean pairwise-to-centroid distance of the given qubits' sites.

        Used by the allocation heuristic as an estimate of how spread out
        the active working set is (the "area expansion" consideration).
        """
        sites = [self._site_of[v] for v in virtual_qubits if v in self._site_of]
        if len(sites) < 2:
            return 0.0
        coords = [self._topology.coordinate(s) for s in sites]
        mean_row = sum(r for r, _ in coords) / len(coords)
        mean_col = sum(c for _, c in coords) / len(coords)
        return sum(
            abs(r - mean_row) + abs(c - mean_col) for r, c in coords
        ) / len(coords)

    def __repr__(self) -> str:
        return (
            f"Layout(placed={self.num_placed}, "
            f"free_sites={self.num_free_sites}, topology={self._topology.name})"
        )
