"""Per-metric regression comparison between two benchmark records.

:func:`compare` takes a baseline and a current record (any schema
version — both are up-converted) and classifies every numeric metric:

* **Direction** comes from the metric's name, the same convention the
  suites already follow: ``*_ns`` / ``*_us`` / ``*_ms`` / ``*seconds*``
  / ``*latency*`` are timings (lower is better), ``*per_second*`` /
  ``*_rate`` are throughputs (higher is better), ``*_ratio`` are
  overhead ratios (lower is better), ``*bytes*`` are sizes (lower is
  better).  Anything else — job counts, gate totals — is
  informational: tracked in the table, never a regression.
* **Tolerance** is a noise band per kind.  Timings and sizes ride a
  wide *relative* band (a 2x slowdown always fails; run-to-run jitter
  on a shared CI runner does not), throughputs a slightly tighter one,
  and near-zero overhead ratios an *absolute* band (a ratio moving
  from 0.003 to 0.015 is noise around zero, not a 5x regression).

Nested metric dicts (e.g. ``phase_seconds`` per compile phase) flatten
to dotted names; lists and strings are skipped.  The output is fully
deterministic — rows sort by metric name — so two compares of the same
records are byte-identical, and :func:`render_compare` /
:func:`render_trend` give the CLI its tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.records import upconvert

#: (kind, direction, tolerance) policies, widest match wins below.
RELATIVE_TOLERANCE_TIMING = 0.5
RELATIVE_TOLERANCE_RATE = 0.45
ABSOLUTE_TOLERANCE_RATIO = 0.02


def flatten_metrics(metrics: Dict[str, object],
                    prefix: str = "") -> Dict[str, float]:
    """Numeric metrics under dotted names; lists/strings are skipped."""
    flat: Dict[str, float] = {}
    for key in sorted(metrics):
        name = f"{prefix}{key}"
        value = metrics[key]
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[name] = float(value)
        elif isinstance(value, dict):
            flat.update(flatten_metrics(value, prefix=f"{name}."))
    return flat


def metric_policy(name: str) -> Tuple[Optional[str], Optional[str], float]:
    """(direction, band kind, tolerance) for one dotted metric name.

    ``direction`` is ``"lower"`` / ``"higher"`` (better), or None for
    informational metrics; ``band kind`` is ``"relative"`` /
    ``"absolute"``.
    """
    leaf = name.rsplit(".", 1)[-1]
    if leaf.endswith("_ratio"):
        return "lower", "absolute", ABSOLUTE_TOLERANCE_RATIO
    if "per_second" in name or leaf.endswith("_rate"):
        return "higher", "relative", RELATIVE_TOLERANCE_RATE
    if ("seconds" in name or "latency" in name
            or leaf.endswith(("_ns", "_us", "_ms"))):
        return "lower", "relative", RELATIVE_TOLERANCE_TIMING
    if "bytes" in name:
        return "lower", "relative", RELATIVE_TOLERANCE_TIMING
    return None, None, 0.0


def _classify(name: str, baseline: Optional[float],
              current: Optional[float]) -> Dict[str, object]:
    """One comparison row; ``status`` drives the gate."""
    direction, band, tolerance = metric_policy(name)
    row: Dict[str, object] = {
        "metric": name,
        "baseline": baseline,
        "current": current,
        "direction": direction or "info",
        "status": "ok",
    }
    if baseline is None:
        row["status"] = "new"
        return row
    if current is None:
        row["status"] = "missing"
        return row
    delta = current - baseline
    row["delta_pct"] = (round(100.0 * delta / baseline, 1)
                        if baseline else None)
    if direction is None:
        row["status"] = "info"
        return row
    worse = delta if direction == "lower" else -delta
    if band == "absolute":
        over = worse > tolerance
        better = worse < -tolerance
    elif baseline:
        over = worse > tolerance * abs(baseline)
        better = worse < -tolerance * abs(baseline)
    else:
        # A zero baseline has no relative band; fall back to the
        # absolute ratio band so 0 -> 0.2s still trips the gate.
        over = worse > ABSOLUTE_TOLERANCE_RATIO
        better = False
    if over:
        row["status"] = "regression"
    elif better:
        row["status"] = "improved"
    return row


def compare(baseline: Dict[str, object],
            current: Dict[str, object]) -> Dict[str, object]:
    """Classify every metric of ``current`` against ``baseline``.

    Returns a JSON-compatible report: sorted per-metric ``rows``, the
    ``regressions`` / ``improvements`` name lists, and ``ok`` (no
    regression).  Comparing a record against itself is always ``ok``.
    """
    base = upconvert(baseline)
    cur = upconvert(current)
    base_flat = flatten_metrics(base["metrics"])
    cur_flat = flatten_metrics(cur["metrics"])
    rows = [_classify(name, base_flat.get(name), cur_flat.get(name))
            for name in sorted(set(base_flat) | set(cur_flat))]
    regressions = [str(row["metric"]) for row in rows
                   if row["status"] == "regression"]
    improvements = [str(row["metric"]) for row in rows
                    if row["status"] == "improved"]
    return {
        "suite": cur["suite"],
        "baseline_generated_at": base["generated_at"],
        "current_generated_at": cur["generated_at"],
        "rows": rows,
        "regressions": regressions,
        "improvements": improvements,
        "ok": not regressions,
    }


def _format_value(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and value == int(value) \
            and abs(value) < 1e15:
        return str(int(value))
    return str(value)


def render_compare(report: Dict[str, object]) -> str:
    """The ``bench compare`` table: deterministic, regression-first."""
    from repro.analysis.report import format_comparison

    rows = []
    for row in report["rows"]:
        delta = row.get("delta_pct")
        rows.append({
            "metric": row["metric"],
            "baseline": _format_value(row["baseline"]),
            "current": _format_value(row["current"]),
            "delta": "-" if delta is None else f"{delta:+.1f}%",
            "direction": row["direction"],
            "status": row["status"].upper()
            if row["status"] == "regression" else row["status"],
        })
    title = (f"bench compare: suite {report['suite']} — "
             f"{report['baseline_generated_at'] or '?'} -> "
             f"{report['current_generated_at'] or '?'}")
    text = format_comparison(title, rows, columns=[
        "metric", "baseline", "current", "delta", "direction", "status"])
    for name in report["regressions"]:
        row = next(r for r in report["rows"] if r["metric"] == name)
        delta = row.get("delta_pct")
        suffix = "" if delta is None else f" ({delta:+.1f}%)"
        text += f"[REGRESSION] {name}: {_format_value(row['baseline'])} " \
                f"-> {_format_value(row['current'])}{suffix}\n"
    if report["ok"]:
        text += f"[ok: no regressions in {len(report['rows'])} metric(s)]\n"
    return text


def render_trend(suite: str, records: Sequence[Dict[str, object]], *,
                 metrics: Optional[Sequence[str]] = None) -> str:
    """The ``bench trend`` table: one row per history record.

    Shows the requested dotted metric names (default: every directional
    metric of the newest record, capped at six for table width).
    """
    from repro.analysis.report import format_comparison

    normalised = [upconvert(record) for record in records]
    if not normalised:
        return f"bench trend: suite {suite} — no history\n"
    if metrics is None:
        latest = flatten_metrics(normalised[-1]["metrics"])
        metrics = [name for name in sorted(latest)
                   if metric_policy(name)[0] is not None][:6]
    rows: List[Dict[str, object]] = []
    for index, record in enumerate(normalised):
        flat = flatten_metrics(record["metrics"])
        row: Dict[str, object] = {
            "run": index,
            "generated_at": record["generated_at"] or "?",
        }
        for name in metrics:
            row[name] = _format_value(flat.get(name))
        rows.append(row)
    title = f"bench trend: suite {suite} — {len(rows)} run(s)"
    return format_comparison(title, rows,
                             columns=["run", "generated_at", *metrics])
