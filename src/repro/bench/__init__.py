"""Benchmark trajectory: versioned ``BENCH_*.json`` records, an
append-only history journal, and a per-metric regression comparator.

The benchmark suites under ``benchmarks/`` measure the system —
compile-path phase splits, tenancy scheduler throughput, verifier gate
rates, telemetry overhead ratios — and flush one ``BENCH_<suite>.json``
snapshot each.  This package turns those point-in-time snapshots into a
*trajectory*:

* :mod:`repro.bench.records` — the versioned record schema (legacy
  bare dicts up-convert as version 0), the shared :func:`write_bench`
  emission helper, and the torn-tail-tolerant
  ``bench_history/<suite>.jsonl`` journal.
* :mod:`repro.bench.compare` — :func:`compare` classifies every metric
  of a current record against a baseline with per-metric direction
  (timings down, throughputs up, ratios near zero) and noise-tolerance
  bands, so "2x slower" fails while CI-runner jitter passes.

The ``bench`` CLI (``python -m repro.experiments bench
list|compare|trend``) and the CI regression gate are thin wrappers
over these two modules.
"""

from repro.bench.compare import (
    compare,
    flatten_metrics,
    metric_policy,
    render_compare,
    render_trend,
)
from repro.bench.records import (
    BENCH_VERSION,
    HISTORY_DIR,
    append_history,
    history_path,
    list_suites,
    load_bench,
    make_record,
    read_history,
    upconvert,
    write_bench,
)

__all__ = [
    "BENCH_VERSION",
    "HISTORY_DIR",
    "append_history",
    "compare",
    "flatten_metrics",
    "history_path",
    "list_suites",
    "load_bench",
    "make_record",
    "metric_policy",
    "read_history",
    "render_compare",
    "render_trend",
    "upconvert",
    "write_bench",
]
