"""Versioned benchmark records and the append-only history journal.

The four benchmark suites (``benchmarks/test_bench_*.py``) each flush a
``BENCH_<suite>.json`` snapshot at the repo root.  Historically those
were bare ``{"suite", "generated_at", "metrics"}`` dicts with no schema
marker — fine for a one-off read, useless for a trajectory.  This
module gives the snapshot a version field and a journal:

* :func:`make_record` / :func:`write_bench` produce **version-1**
  records: the legacy three keys plus ``bench_version``, so readers
  can tell what they are holding and future schema changes can
  up-convert instead of guessing.
* :func:`upconvert` accepts any historical shape — a version-1 record
  passes through, a bare legacy dict (implicit **version 0**) is
  wrapped — so ``bench compare`` works against snapshots produced
  before this module existed.
* :func:`append_history` / :func:`read_history` keep an append-only
  ``bench_history/<suite>.jsonl`` journal, one record per line.  Like
  the telemetry event-log sink, the reader is torn-tail tolerant: a
  half-written final line (kill -9 mid-append) is counted, not fatal,
  so the trajectory survives every crash that leaves at least one
  complete line.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.exceptions import BenchError

#: Schema version stamped into every record this library writes.
BENCH_VERSION = 1

#: Default journal directory name, relative to the repo root.
HISTORY_DIR = "bench_history"


def make_record(suite: str, metrics: Dict[str, object], *,
                generated_at: Optional[str] = None) -> Dict[str, object]:
    """Build a version-:data:`BENCH_VERSION` benchmark record."""
    if not suite:
        raise BenchError("benchmark record needs a non-empty suite name")
    if not isinstance(metrics, dict):
        raise BenchError(
            f"metrics must be a mapping, got {type(metrics).__name__}")
    if generated_at is None:
        import time

        generated_at = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    return {
        "bench_version": BENCH_VERSION,
        "suite": suite,
        "generated_at": generated_at,
        "metrics": metrics,
    }


def upconvert(record: object) -> Dict[str, object]:
    """Normalise any historical record shape to the current schema.

    Version-1 records pass through (validated); bare legacy dicts
    (implicit version 0: ``{"suite", "generated_at", "metrics"}``) are
    wrapped.  Anything else — or a record claiming a *newer* version
    than this library understands — raises :class:`BenchError`.
    """
    if not isinstance(record, dict):
        raise BenchError(
            f"benchmark record must be a JSON object, "
            f"got {type(record).__name__}")
    version = record.get("bench_version", 0)
    if not isinstance(version, int) or version < 0:
        raise BenchError(f"unrecognisable bench_version: {version!r}")
    if version > BENCH_VERSION:
        raise BenchError(
            f"record is bench_version {version}, but this library only "
            f"understands <= {BENCH_VERSION}; upgrade to read it")
    metrics = record.get("metrics")
    if not isinstance(metrics, dict):
        raise BenchError("benchmark record has no metrics mapping")
    return {
        "bench_version": BENCH_VERSION,
        "suite": str(record.get("suite") or "unknown"),
        "generated_at": str(record.get("generated_at") or ""),
        "metrics": metrics,
    }


def load_bench(path: str) -> Dict[str, object]:
    """Read one ``BENCH_*.json`` snapshot, up-converting legacy shapes."""
    try:
        with open(path, "r", encoding="utf-8") as stream:
            payload = json.load(stream)
    except OSError as error:
        raise BenchError(f"cannot read benchmark snapshot {path}: {error}")
    except ValueError as error:
        raise BenchError(f"malformed benchmark snapshot {path}: {error}")
    return upconvert(payload)


def write_bench(path: str, suite: str, metrics: Dict[str, object], *,
                history_dir: Optional[str] = None,
                generated_at: Optional[str] = None) -> Dict[str, object]:
    """Write a versioned snapshot; optionally journal it to history.

    This is the one emission helper the benchmark suites share: it
    replaces their hand-rolled ``json.dumps`` blocks, so every
    ``BENCH_*.json`` at the repo root carries ``bench_version`` and
    (when ``history_dir`` is given) lands in the append-only journal
    that ``bench compare`` / ``bench trend`` read.
    """
    record = make_record(suite, metrics, generated_at=generated_at)
    with open(path, "w", encoding="utf-8") as stream:
        stream.write(json.dumps(record, indent=2, sort_keys=True) + "\n")
    if history_dir:
        append_history(history_dir, record)
    return record


# ----------------------------------------------------------------------
# The append-only history journal.

def history_path(history_dir: str, suite: str) -> str:
    """The journal file for one suite: ``<dir>/<suite>.jsonl``."""
    return os.path.join(history_dir, f"{suite}.jsonl")


def append_history(history_dir: str, record: Dict[str, object]) -> str:
    """Append one record to its suite's journal; returns the path."""
    normalised = upconvert(record)
    os.makedirs(history_dir, exist_ok=True)
    path = history_path(history_dir, str(normalised["suite"]))
    with open(path, "a", encoding="utf-8") as stream:
        stream.write(json.dumps(normalised, sort_keys=True) + "\n")
        stream.flush()
    return path


def read_history(history_dir: str, suite: str) -> Dict[str, object]:
    """Read one suite's journal, oldest first.

    Returns ``{"records": [...], "torn_lines": n}``; a missing journal
    is an empty trajectory, not an error, and unparseable lines (torn
    tail after a crash mid-append) are counted rather than fatal.
    """
    records: List[Dict[str, object]] = []
    torn = 0
    try:
        with open(history_path(history_dir, suite), "r",
                  encoding="utf-8") as stream:
            lines = stream.read().splitlines()
    except OSError:
        return {"records": [], "torn_lines": 0}
    for line in lines:
        if not line.strip():
            continue
        try:
            records.append(upconvert(json.loads(line)))
        except (ValueError, BenchError):
            torn += 1
    return {"records": records, "torn_lines": torn}


def list_suites(history_dir: str) -> List[str]:
    """Suites with a journal in ``history_dir``, sorted."""
    try:
        names = os.listdir(history_dir)
    except OSError:
        return []
    return sorted(name[:-len(".jsonl")] for name in names
                  if name.endswith(".jsonl"))
