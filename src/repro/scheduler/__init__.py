"""Gate scheduling and qubit liveness tracking."""

from repro.scheduler.asap import GateScheduler
from repro.scheduler.events import GateExecution, ScheduledGate
from repro.scheduler.tracker import LivenessTracker, UsageSegment

__all__ = [
    "GateExecution",
    "GateScheduler",
    "LivenessTracker",
    "ScheduledGate",
    "UsageSegment",
]
