"""Scheduled-event records produced by the gate scheduler."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class ScheduledGate:
    """One gate placed on the machine timeline.

    Attributes:
        name: Gate name (``"swap"`` entries are router-inserted swaps).
        virtual_qubits: Machine-level (virtual) qubit ids the gate acts on.
        sites: Physical sites occupied by the operands when the gate ran.
        start: Start time in scheduler units.
        finish: Completion time in scheduler units.
        routed: True for communication operations inserted by the router.
    """

    name: str
    virtual_qubits: Tuple[int, ...]
    sites: Tuple[int, ...]
    start: int
    finish: int
    routed: bool = False

    @property
    def duration(self) -> int:
        """Gate duration in scheduler units."""
        return self.finish - self.start


@dataclass(frozen=True)
class GateExecution:
    """Summary returned to the compiler for each logical gate it emits.

    Attributes:
        start: Start time of the logical gate itself.
        finish: Completion time of the logical gate.
        swaps: Number of swap gates inserted to make the operands adjacent.
        comm_cost: Communication cost units (swap-chain length on NISQ,
            braid crossings on FT) fed into the running ``S`` estimate.
    """

    start: int
    finish: int
    swaps: int
    comm_cost: float
