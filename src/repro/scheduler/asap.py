"""ASAP gate scheduler with communication resolution.

The scheduler owns the virtual-to-physical :class:`~repro.arch.mapping.Layout`
and a per-qubit clock.  Each gate the compiler emits is scheduled at the
earliest time allowed by its operands; two-qubit gates between non-adjacent
sites first receive the swap chain (NISQ) or braid delay (FT) returned by
the machine model.  The scheduler also drives the liveness tracker so that
usage segments reflect actual scheduled times.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import CompilationError
from repro.arch.machine import CommunicationResult, Machine
from repro.arch.mapping import Layout
from repro.scheduler.events import GateExecution, ScheduledGate
from repro.scheduler.tracker import LivenessTracker


class GateScheduler:
    """Schedules gates on a machine, inserting communication as needed.

    Args:
        machine: The target machine model.
        tracker: Liveness tracker updated as gates are scheduled.
        record_schedule: When True every scheduled gate (including
            router-inserted swaps) is kept in :attr:`events`; turn off for
            very large workloads to save memory.
    """

    def __init__(
        self,
        machine: Machine,
        tracker: Optional[LivenessTracker] = None,
        record_schedule: bool = False,
    ) -> None:
        self.machine = machine
        self.layout = Layout(machine.topology)
        self.tracker = tracker if tracker is not None else LivenessTracker()
        self._record = record_schedule
        self.events: List[ScheduledGate] = []
        self._qubit_time: Dict[int, int] = {}
        self._site_time: Dict[int, int] = {}
        self.makespan = 0
        self.gate_count = 0
        self.swap_count = 0
        self.comm_cost_total = 0.0
        self.two_qubit_gate_count = 0

    # ------------------------------------------------------------------
    # Qubit management
    # ------------------------------------------------------------------
    def register_qubit(self, virtual: int, site: int) -> None:
        """Place a freshly created virtual qubit on ``site``."""
        self.layout.place(virtual, site)
        self._qubit_time[virtual] = self._site_time.get(site, 0)

    def qubit_time(self, virtual: int) -> int:
        """Current availability time of a virtual qubit."""
        return self._qubit_time.get(virtual, 0)

    def frontier_time(self, virtual_qubits: Sequence[int]) -> int:
        """Earliest time a gate on ``virtual_qubits`` could start."""
        return max((self._qubit_time.get(q, 0) for q in virtual_qubits), default=0)

    def current_time(self) -> int:
        """The makespan so far (used as the allocation timestamp)."""
        return self.makespan

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_gate(self, name: str, virtual_qubits: Sequence[int]) -> GateExecution:
        """Schedule one logical gate, resolving connectivity first.

        Returns:
            A :class:`GateExecution` with the gate's time window, the number
            of swaps inserted and the communication cost units.
        """
        qubits = tuple(virtual_qubits)
        for qubit in qubits:
            if not self.layout.is_placed(qubit):
                raise CompilationError(
                    f"gate {name!r} references unplaced virtual qubit {qubit}"
                )
        total_swaps = 0
        total_cost = 0.0
        extra_latency = 0

        if len(qubits) >= 2:
            # Resolve connectivity pairwise against the last operand (the
            # target): each control is routed next to the target in turn.
            target = qubits[-1]
            for control in qubits[:-1]:
                result = self._resolve_pair(control, target)
                total_swaps += len(result.swaps)
                total_cost += result.cost_units
                extra_latency += result.extra_latency

        start = self.frontier_time(qubits) + extra_latency
        duration = self.machine.gate_duration(name)
        finish = start + duration
        self._commit(name, qubits, start, finish, routed=False)
        self.gate_count += 1
        if len(qubits) >= 2:
            self.two_qubit_gate_count += 1
        self.comm_cost_total += total_cost
        return GateExecution(start=start, finish=finish, swaps=total_swaps,
                             comm_cost=total_cost)

    # ------------------------------------------------------------------
    def _resolve_pair(self, moving: int, stationary: int) -> CommunicationResult:
        """Make ``moving`` adjacent to ``stationary``, applying swaps."""
        site_a = self.layout.site_of(moving)
        site_b = self.layout.site_of(stationary)
        earliest = self.frontier_time((moving, stationary))
        result = self.machine.resolve_interaction(site_a, site_b, earliest)
        for step in result.swaps:
            self._apply_swap(step.site_a, step.site_b)
        return result

    def _apply_swap(self, site_a: int, site_b: int) -> None:
        """Swap the occupants of two adjacent sites and advance their clocks."""
        occupant_a = self.layout.virtual_at(site_a)
        occupant_b = self.layout.virtual_at(site_b)
        involved = [q for q in (occupant_a, occupant_b) if q is not None]
        start = max(
            self.frontier_time(involved),
            self._site_time.get(site_a, 0),
            self._site_time.get(site_b, 0),
        )
        finish = start + self.machine.swap_duration
        self.layout.swap(site_a, site_b)
        for qubit in involved:
            self._qubit_time[qubit] = finish
            self.tracker.record_gate(qubit, start, finish)
        self._site_time[site_a] = finish
        self._site_time[site_b] = finish
        self.makespan = max(self.makespan, finish)
        self.swap_count += 1
        if self._record:
            self.events.append(ScheduledGate(
                name="swap",
                virtual_qubits=tuple(involved),
                sites=(site_a, site_b),
                start=start,
                finish=finish,
                routed=True,
            ))

    def _commit(self, name: str, qubits: Tuple[int, ...], start: int,
                finish: int, routed: bool) -> None:
        sites = tuple(self.layout.site_of(q) for q in qubits)
        for qubit, site in zip(qubits, sites):
            self._qubit_time[qubit] = finish
            self._site_time[site] = finish
            self.tracker.record_gate(qubit, start, finish)
        self.makespan = max(self.makespan, finish)
        if self._record:
            self.events.append(ScheduledGate(
                name=name,
                virtual_qubits=qubits,
                sites=sites,
                start=start,
                finish=finish,
                routed=routed,
            ))

    # ------------------------------------------------------------------
    def average_comm_cost(self) -> float:
        """Mean communication cost units per two-qubit gate so far."""
        if self.two_qubit_gate_count == 0:
            return 0.0
        return self.comm_cost_total / self.two_qubit_gate_count
