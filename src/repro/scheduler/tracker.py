"""Qubit liveness tracking for the Active Quantum Volume metric.

AQV (Section III-B) is the sum over qubits of the lengths of their usage
segments, where a segment opens when a qubit is allocated and closes when
it is reclaimed (returned to |0> and pushed onto the ancilla heap).  Time
a qubit spends reclaimed in the heap does not count.  The tracker records
segments as the compiler allocates / reclaims qubits and the scheduler
advances their clocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class UsageSegment:
    """One allocation-to-reclamation interval of a qubit.

    Attributes:
        qubit: Virtual qubit id.
        start: Allocation time (time of the first gate after allocation).
        end: Reclamation time (completion of the last gate before the qubit
            was reclaimed, or the end of the program if never reclaimed).
    """

    qubit: int
    start: int
    end: int

    @property
    def duration(self) -> int:
        """Length of the segment."""
        return max(self.end - self.start, 0)


@dataclass
class _OpenSegment:
    qubit: int
    opened_at: int
    first_gate_start: Optional[int] = None
    last_gate_finish: Optional[int] = None


class LivenessTracker:
    """Records per-qubit usage segments as compilation proceeds."""

    def __init__(self) -> None:
        self._open: Dict[int, _OpenSegment] = {}
        self._segments: List[UsageSegment] = []
        self._peak_live = 0

    # ------------------------------------------------------------------
    @property
    def num_live(self) -> int:
        """Number of qubits currently live (allocated, not reclaimed)."""
        return len(self._open)

    @property
    def peak_live(self) -> int:
        """Maximum number of simultaneously live qubits seen so far."""
        return self._peak_live

    def live_qubits(self) -> Tuple[int, ...]:
        """Ids of currently live qubits."""
        return tuple(self._open)

    def is_live(self, qubit: int) -> bool:
        """True when the qubit has an open usage segment."""
        return qubit in self._open

    # ------------------------------------------------------------------
    def allocate(self, qubit: int, time: int) -> None:
        """Open a usage segment for ``qubit`` at ``time``.

        Allocating an already-live qubit is a no-op (parameters of nested
        calls stay live across the call boundary).
        """
        if qubit in self._open:
            return
        self._open[qubit] = _OpenSegment(qubit=qubit, opened_at=time)
        self._peak_live = max(self._peak_live, len(self._open))

    def record_gate(self, qubit: int, start: int, finish: int) -> None:
        """Note that a gate ran on ``qubit`` between ``start`` and ``finish``."""
        segment = self._open.get(qubit)
        if segment is None:
            return
        if segment.first_gate_start is None:
            segment.first_gate_start = start
        segment.last_gate_finish = (
            finish if segment.last_gate_finish is None
            else max(segment.last_gate_finish, finish)
        )

    def reclaim(self, qubit: int, time: int) -> None:
        """Close the usage segment of ``qubit`` at ``time``."""
        segment = self._open.pop(qubit, None)
        if segment is None:
            return
        start = segment.first_gate_start
        if start is None:
            start = segment.opened_at
        end = max(time, segment.last_gate_finish or start, start)
        self._segments.append(UsageSegment(qubit=qubit, start=start, end=end))

    def finalize(self, end_time: int) -> None:
        """Close every still-open segment at the end of the program."""
        for qubit in list(self._open):
            self.reclaim(qubit, end_time)

    # ------------------------------------------------------------------
    @property
    def segments(self) -> Tuple[UsageSegment, ...]:
        """All closed usage segments."""
        return tuple(self._segments)

    def active_quantum_volume(self) -> int:
        """Sum of segment durations over every qubit (the AQV metric)."""
        return sum(segment.duration for segment in self._segments)

    def usage_series(self) -> List[Tuple[int, int]]:
        """Piecewise-constant (time, live-qubit-count) series.

        This is the curve plotted in Figure 1; the area under it equals the
        active quantum volume.
        """
        events: List[Tuple[int, int]] = []
        for segment in self._segments:
            if segment.duration <= 0:
                continue
            events.append((segment.start, 1))
            events.append((segment.end, -1))
        events.sort()
        series: List[Tuple[int, int]] = [(0, 0)]
        live = 0
        for time, delta in events:
            live += delta
            if series and series[-1][0] == time:
                series[-1] = (time, live)
            else:
                series.append((time, live))
        return series
