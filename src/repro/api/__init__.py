"""Unified compilation service API.

The single front door for compilation at any scale: describe work as
:class:`CompileJob` objects (or let :class:`SweepSpec` expand a
benchmarks x machines x policies x scales product into them), then run
them through a :class:`Session`, which memoizes by job fingerprint and
executes through a pluggable executor — :class:`SerialExecutor` in
process, or :class:`ParallelExecutor` across worker processes.  The
resulting :class:`SweepResult` filters, tabulates and exports to
JSON/CSV.

Every experiment module, the ``python -m repro.experiments`` CLI and the
examples sit on top of this package.
"""

from repro.api.executors import ParallelExecutor, SerialExecutor
from repro.api.job import (
    MACHINE_KINDS,
    CompileJob,
    MachineSpec,
    autosize_compile,
    execute_job,
)
from repro.api.session import Session
from repro.api.sweep import SweepEntry, SweepResult, SweepSpec

__all__ = [
    "CompileJob",
    "MACHINE_KINDS",
    "MachineSpec",
    "ParallelExecutor",
    "SerialExecutor",
    "Session",
    "SweepEntry",
    "SweepResult",
    "SweepSpec",
    "autosize_compile",
    "execute_job",
]
