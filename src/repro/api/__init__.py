"""Unified compilation service API.

The single front door for compilation at any scale: describe work as
:class:`CompileJob` objects (or let :class:`SweepSpec` expand a
benchmarks x machines x policies x scales product into them), then run
them through a :class:`Session`, which memoizes by job fingerprint and
executes through a pluggable executor — :class:`SerialExecutor` in
process, or :class:`ParallelExecutor` across worker processes.  The
resulting :class:`SweepResult` filters, tabulates and exports to
JSON/CSV.

Jobs, machine specs and sweep specs all serialize to JSON descriptors
(``to_dict``/``from_dict``), and a :class:`Session` can be backed by a
persistent disk cache — the pieces :mod:`repro.service` assembles into a
network endpoint.

Every experiment module, the ``python -m repro.experiments`` CLI and the
examples sit on top of this package.
"""

from repro.api.executors import JobOutcome, ParallelExecutor, SerialExecutor
from repro.api.job import (
    MACHINE_KINDS,
    CompileJob,
    MachineSpec,
    autosize_compile,
    config_from_dict,
    config_to_dict,
    execute_job,
    execute_job_payload,
    job_failure,
)
from repro.api.session import Session
from repro.api.sweep import SweepEntry, SweepResult, SweepSpec

__all__ = [
    "CompileJob",
    "JobOutcome",
    "MACHINE_KINDS",
    "MachineSpec",
    "ParallelExecutor",
    "SerialExecutor",
    "Session",
    "SweepEntry",
    "SweepResult",
    "SweepSpec",
    "autosize_compile",
    "config_from_dict",
    "config_to_dict",
    "execute_job",
    "execute_job_payload",
    "job_failure",
]
