"""The compilation session: the single front door for running jobs.

A :class:`Session` owns an executor and a two-tier result cache keyed by
job fingerprints — an in-memory memo, optionally backed by a persistent
:class:`~repro.service.cache.DiskCache` so repeated sweeps survive
process restarts.  Every consumer — the experiment modules, the CLI, the
examples, the network service — submits work here, so batching, caching
and parallelism live in exactly one place::

    from repro.api import MachineSpec, Session, SweepSpec

    session = Session(jobs=4, cache_dir="~/.cache/repro")
    spec = (SweepSpec()
            .with_benchmarks("RD53", "ADDER4")
            .with_machines(MachineSpec.nisq_grid(5, 5))
            .with_policies("lazy", "eager", "square"))
    sweep = session.run(spec)
    print(sweep.table("NISQ sweep"))
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.exceptions import ExperimentError
from repro.api.executors import ParallelExecutor, SerialExecutor
from repro.api.job import CompileJob, MachineSpec
from repro.api.sweep import SweepEntry, SweepResult, SweepSpec
from repro.core.compiler import preset
from repro.core.result import CompilationResult, JobFailure
from repro.ir.program import Program


class Session:
    """Executes compile jobs with memoization and a pluggable executor.

    Identical jobs (same fingerprint) compile once per session; repeats
    are served from the in-memory cache, which makes overlapping sweeps —
    e.g. the three Figure 8 panels over the same benchmark suite — almost
    free after the first one.  With a disk cache attached, results also
    persist across sessions: a restarted process re-serves earlier
    compilations from disk instead of recompiling.

    Args:
        executor: Explicit executor instance; any object with a
            ``run(jobs) -> results`` method works (add ``run_isolated``
            for failure isolation support).
        jobs: Shorthand when ``executor`` is None: 1 builds a
            :class:`~repro.api.executors.SerialExecutor`, more builds a
            :class:`~repro.api.executors.ParallelExecutor` with that many
            worker processes.
        disk_cache: Persistent second cache tier; any object with
            ``get(fingerprint)``/``put(fingerprint, result, job=...)``
            works, normally a :class:`~repro.service.cache.DiskCache`.
        cache_dir: Shorthand for ``disk_cache=DiskCache(cache_dir)``.
        isolate_failures: Default failure-handling mode for :meth:`run`:
            when True, a job that raises a library error yields a
            :class:`~repro.core.result.JobFailure` entry instead of
            killing its batch (the mode the network service runs in).
    """

    def __init__(self, executor=None, jobs: int = 1, *,
                 disk_cache=None, cache_dir: Optional[str] = None,
                 isolate_failures: bool = False) -> None:
        if executor is None:
            executor = SerialExecutor() if jobs <= 1 else ParallelExecutor(jobs)
        if disk_cache is not None and cache_dir is not None:
            raise ExperimentError(
                "pass disk_cache= or cache_dir=, not both"
            )
        if cache_dir is not None:
            # Imported lazily: repro.service sits on top of repro.api.
            from repro.service.cache import DiskCache

            disk_cache = DiskCache(cache_dir)
        self.executor = executor
        self.disk_cache = disk_cache
        self.isolate_failures = isolate_failures
        self._cache: Dict[str, CompilationResult] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.disk_hits = 0

    # ------------------------------------------------------------------
    def run(self, work: Union[SweepSpec, Sequence[CompileJob]], *,
            isolate_failures: Optional[bool] = None) -> SweepResult:
        """Execute a sweep spec or an explicit job list.

        Duplicate jobs inside one batch execute once; results come back
        in submission order regardless of executor.

        Args:
            work: A :class:`~repro.api.sweep.SweepSpec` or job sequence.
            isolate_failures: Override the session's default mode for
                this batch; see the class docstring.

        Raises:
            ExperimentError: If the executor returns the wrong number of
                results for the batch, or isolation is requested from an
                executor without a ``run_isolated`` method.
        """
        isolate = (self.isolate_failures if isolate_failures is None
                   else isolate_failures)
        jobs = work.jobs() if isinstance(work, SweepSpec) else list(work)
        fingerprints = [job.fingerprint() for job in jobs]

        pending: Dict[str, CompileJob] = {}
        for job, fingerprint in zip(jobs, fingerprints):
            if fingerprint not in self._cache and fingerprint not in pending:
                pending[fingerprint] = job
        if self.disk_cache is not None:
            for fingerprint in list(pending):
                restored = self.disk_cache.get(fingerprint)
                if restored is not None:
                    self._cache[fingerprint] = restored
                    self.disk_hits += 1
                    del pending[fingerprint]

        failures: Dict[str, JobFailure] = {}
        fresh = set(pending)
        if pending:
            outcomes = self._execute(list(pending.values()), isolate)
            if len(outcomes) != len(pending):
                raise ExperimentError(
                    f"executor {self.executor!r} returned {len(outcomes)} "
                    f"result(s) for a batch of {len(pending)} job(s); "
                    f"an executor must return exactly one result per job, "
                    f"in order"
                )
            for fingerprint, outcome in zip(pending.keys(), outcomes):
                if isinstance(outcome, JobFailure):
                    failures[fingerprint] = outcome
                    continue
                self._cache[fingerprint] = outcome
                if self.disk_cache is not None:
                    self.disk_cache.put(fingerprint, outcome,
                                        job=pending[fingerprint])
            if self.disk_cache is not None:
                flush = getattr(self.disk_cache, "flush_index", None)
                if flush is not None:
                    flush()
            if failures and not isolate:
                # Completed work is already cached (memory and disk), so
                # a rerun after fixing the bad job resumes warm.
                raise next(iter(failures.values())).to_exception()

        entries: List[SweepEntry] = []
        for job, fingerprint in zip(jobs, fingerprints):
            failed = fingerprint in failures
            # Failures are never cached, so every occurrence of a failed
            # job — including in-batch duplicates — is a miss.
            cached = not failed and fingerprint not in fresh
            if cached:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
                fresh.discard(fingerprint)  # later repeats in-batch are hits
            if failed:
                entries.append(SweepEntry(job=job, result=None,
                                          error=failures[fingerprint],
                                          cached=False))
            else:
                entries.append(SweepEntry(job=job,
                                          result=self._cache[fingerprint],
                                          cached=cached))
        return SweepResult(entries)

    def _execute(self, jobs: List[CompileJob], isolate: bool) -> Sequence:
        """Dispatch one deduplicated batch to the executor.

        Even without isolation the built-in executors run in capturing
        mode: their successful outcomes make it back into the cache
        tiers before :meth:`run` re-raises the first failure.  Custom
        executors without ``run_isolated`` keep their native fail-fast
        ``run`` behaviour (unless isolation was requested, which then
        errors).
        """
        run_isolated = getattr(self.executor, "run_isolated", None)
        if run_isolated is not None:
            return run_isolated(jobs)
        if isolate:
            raise ExperimentError(
                f"executor {self.executor!r} does not support failure "
                f"isolation; give it a run_isolated(jobs) method or run "
                f"with isolate_failures=False"
            )
        return self.executor.run(jobs)

    def submit(self, job: CompileJob) -> CompilationResult:
        """Execute (or recall) a single job.

        Raises the job's library error even when the session defaults to
        failure isolation — a single-job submission has no batch to
        protect.
        """
        entry = self.run([job])[0]
        if entry.error is not None:
            raise entry.error.to_exception()
        return entry.result

    def compile(self, program_or_benchmark: Union[str, Program],
                machine: Optional[MachineSpec] = None,
                policy: str = "square",
                overrides: Optional[Dict[str, object]] = None,
                **config_overrides) -> CompilationResult:
        """Convenience single compilation by benchmark name or program.

        Args:
            program_or_benchmark: Registered benchmark name, or an
                in-memory :class:`~repro.ir.program.Program`.
            machine: Target machine spec; defaults to autosized NISQ.
            policy: Policy preset name.
            overrides: Benchmark size overrides (benchmark jobs only).
            config_overrides: :class:`~repro.core.compiler.CompilerConfig`
                field overrides, e.g. ``decompose_toffoli=True``.
        """
        machine = machine or MachineSpec.nisq_autosize()
        config = preset(policy, **config_overrides)
        if isinstance(program_or_benchmark, str):
            job = CompileJob(benchmark=program_or_benchmark, machine=machine,
                             config=config,
                             overrides=tuple(sorted((overrides or {}).items())))
        else:
            if overrides:
                raise ExperimentError(
                    "overrides= only apply to benchmark names; size an "
                    "in-memory program when you build it"
                )
            job = CompileJob(program=program_or_benchmark, machine=machine,
                             config=config)
        return self.submit(job)

    # ------------------------------------------------------------------
    def clear_cache(self) -> None:
        """Drop every memoized result (the disk tier is left intact)."""
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        """Number of results memoized in memory."""
        return len(self._cache)

    def stats(self) -> Dict[str, object]:
        """Cache and executor statistics, JSON-compatible."""
        stats: Dict[str, object] = {
            "executor": repr(self.executor),
            "cache_size": self.cache_size,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "disk_hits": self.disk_hits,
        }
        if self.disk_cache is not None:
            stats["disk_cache"] = self.disk_cache.stats()
        return stats

    def __repr__(self) -> str:
        disk = "" if self.disk_cache is None else f", disk={self.disk_cache!r}"
        return (f"Session(executor={self.executor!r}, "
                f"cached={self.cache_size}, hits={self.cache_hits}, "
                f"misses={self.cache_misses}{disk})")
