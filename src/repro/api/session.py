"""The compilation session: the single front door for running jobs.

A :class:`Session` owns an executor and a two-tier result cache keyed by
job fingerprints — an in-memory memo, optionally backed by a persistent
:class:`~repro.service.cache.DiskCache` so repeated sweeps survive
process restarts.  Every consumer — the experiment modules, the CLI, the
examples, the network service — submits work here, so batching, caching
and parallelism live in exactly one place::

    from repro.api import MachineSpec, Session, SweepSpec

    session = Session(jobs=4, cache_dir="~/.cache/repro")
    spec = (SweepSpec()
            .with_benchmarks("RD53", "ADDER4")
            .with_machines(MachineSpec.nisq_grid(5, 5))
            .with_policies("lazy", "eager", "square"))
    sweep = session.run(spec)
    print(sweep.table("NISQ sweep"))
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Union

from repro.exceptions import ExperimentError
from repro.api.executors import ParallelExecutor, SerialExecutor
from repro.api.job import CompileJob, MachineSpec
from repro.api.sweep import SweepEntry, SweepResult, SweepSpec
from repro.core.compiler import preset
from repro.core.result import CompilationResult, JobFailure
from repro.ir.program import Program
from repro.telemetry.spans import child_span, record_compile_spans


class _Flight:
    """One in-flight compilation, owned by exactly one :meth:`Session.run`.

    Concurrent runs needing the same fingerprint wait on :attr:`event`
    instead of recompiling; the owner settles :attr:`outcome` with the
    result or failure before setting the event.  ``None`` after the event
    fires means the owner died without a structured outcome (executor
    bug, interrupt) and waiters must synthesize a failure.
    """

    __slots__ = ("event", "outcome")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.outcome: Optional[object] = None


class Session:
    """Executes compile jobs with memoization and a pluggable executor.

    Identical jobs (same fingerprint) compile once per session; repeats
    are served from the in-memory cache, which makes overlapping sweeps —
    e.g. the three Figure 8 panels over the same benchmark suite — almost
    free after the first one.  With a disk cache attached, results also
    persist across sessions: a restarted process re-serves earlier
    compilations from disk instead of recompiling.

    Sessions are thread-safe with single-flight semantics: any number of
    threads (e.g. a :class:`~repro.queue.workers.WorkerPool`) may call
    :meth:`run` concurrently, and a fingerprint claimed by one batch is
    never recompiled by another — late arrivals wait for the in-flight
    compilation and share its result.  The lock only guards cache
    bookkeeping; compilation itself runs unlocked, so concurrent batches
    genuinely overlap.

    Args:
        executor: Explicit executor instance; any object with a
            ``run(jobs) -> results`` method works (add ``run_isolated``
            for failure isolation support).
        jobs: Shorthand when ``executor`` is None: 1 builds a
            :class:`~repro.api.executors.SerialExecutor`, more builds a
            :class:`~repro.api.executors.ParallelExecutor` with that many
            worker processes.
        disk_cache: Persistent second cache tier; any object with
            ``get(fingerprint)``/``put(fingerprint, result, job=...)``
            works, normally a :class:`~repro.service.cache.DiskCache`.
        cache_dir: Shorthand for ``disk_cache=DiskCache(cache_dir)``.
        isolate_failures: Default failure-handling mode for :meth:`run`:
            when True, a job that raises a library error yields a
            :class:`~repro.core.result.JobFailure` entry instead of
            killing its batch (the mode the network service runs in).
        verify: When True, run the static compilation verifier
            (:func:`repro.verify.verify_result`) over every successful
            result as a post-pass and attach the
            :class:`~repro.verify.diagnostics.VerificationReport` to the
            sweep entry.  Reports are memoized per job fingerprint, so
            cache hits re-attach the existing report instead of
            re-checking.
        metrics: Optional :class:`~repro.telemetry.MetricsRegistry`.
            When attached, every *fresh* compilation (not cache or disk
            hits) observes its per-phase compile seconds into the
            ``repro_compile_phase_seconds{phase=...}`` histograms and
            its total into ``repro_compile_seconds`` — the profiling
            substrate the hot-path work reads from ``/metrics``.  The
            service attaches its registry here automatically.
        events: Optional :class:`~repro.telemetry.events.EventLog`.
            When attached, cache-tier outcomes and verifier findings
            are narrated as structured events (correlated to the
            worker's ``job.run`` span when one is active).  The service
            attaches its event log here automatically.
    """

    def __init__(self, executor=None, jobs: int = 1, *,
                 disk_cache=None, cache_dir: Optional[str] = None,
                 isolate_failures: bool = False,
                 verify: bool = False, metrics=None,
                 events=None) -> None:
        if executor is None:
            executor = SerialExecutor() if jobs <= 1 else ParallelExecutor(jobs)
        if disk_cache is not None and cache_dir is not None:
            raise ExperimentError(
                "pass disk_cache= or cache_dir=, not both"
            )
        if cache_dir is not None:
            # Imported lazily: repro.service sits on top of repro.api.
            from repro.service.cache import DiskCache

            disk_cache = DiskCache(cache_dir)
        self.executor = executor
        self.disk_cache = disk_cache
        self.isolate_failures = isolate_failures
        self.verify = verify
        self.metrics = metrics
        self.events = events
        self._cache: Dict[str, CompilationResult] = {}
        self._verify_cache: Dict[str, object] = {}
        self._lock = threading.Lock()
        self._inflight: Dict[str, _Flight] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.disk_hits = 0
        self.verified_results = 0
        self.verify_findings = 0

    # ------------------------------------------------------------------
    def run(self, work: Union[SweepSpec, Sequence[CompileJob]], *,
            isolate_failures: Optional[bool] = None) -> SweepResult:
        """Execute a sweep spec or an explicit job list.

        Duplicate jobs inside one batch execute once; results come back
        in submission order regardless of executor.

        Args:
            work: A :class:`~repro.api.sweep.SweepSpec` or job sequence.
            isolate_failures: Override the session's default mode for
                this batch; see the class docstring.

        Raises:
            ExperimentError: If the executor returns the wrong number of
                results for the batch, or isolation is requested from an
                executor without a ``run_isolated`` method.
        """
        isolate = (self.isolate_failures if isolate_failures is None
                   else isolate_failures)
        jobs = work.jobs() if isinstance(work, SweepSpec) else list(work)
        fingerprints = [job.fingerprint() for job in jobs]

        # Partition the batch: already memoized, claimed by this call
        # (``mine`` — we compile, everyone else waits on our flight), or
        # claimed by a concurrent call (``theirs`` — we wait).
        resolved: Dict[str, CompilationResult] = {}
        mine: Dict[str, CompileJob] = {}
        theirs: Dict[str, _Flight] = {}
        # child_span is a no-op unless a span is already active (the
        # service worker's job.run span) — plain library use stays at
        # one contextvar read per tier.
        with child_span("cache.memory") as memo_span:
            with self._lock:
                for job, fingerprint in zip(jobs, fingerprints):
                    if (fingerprint in resolved or fingerprint in mine
                            or fingerprint in theirs):
                        continue
                    hit = self._cache.get(fingerprint)
                    if hit is not None:
                        resolved[fingerprint] = hit
                        continue
                    flight = self._inflight.get(fingerprint)
                    if flight is not None:
                        theirs[fingerprint] = flight
                    else:
                        self._inflight[fingerprint] = _Flight()
                        mine[fingerprint] = job
            if memo_span is not None:
                memo_span.labels["hits"] = str(len(resolved))
                memo_span.labels["misses"] = str(len(mine) + len(theirs))
            if self.events is not None:
                self.events.debug(
                    "cache.memory consulted", component="cache",
                    fields={"tier": "memory", "hits": len(resolved),
                            "misses": len(mine) + len(theirs)})

        failures: Dict[str, JobFailure] = {}
        disk_restored = set()
        fresh = set()
        try:
            if self.disk_cache is not None and mine:
                with child_span("cache.disk") as disk_span:
                    lookups = len(mine)
                    for fingerprint in list(mine):
                        restored = self.disk_cache.get(fingerprint)
                        if restored is not None:
                            resolved[fingerprint] = restored
                            disk_restored.add(fingerprint)
                            with self._lock:
                                self.disk_hits += 1
                            self._settle(fingerprint, restored)
                            del mine[fingerprint]
                    if disk_span is not None:
                        disk_span.labels["lookups"] = str(lookups)
                        disk_span.labels["hits"] = str(len(disk_restored))
                    if self.events is not None:
                        self.events.debug(
                            "cache.disk consulted", component="cache",
                            fields={"tier": "disk", "lookups": lookups,
                                    "hits": len(disk_restored)})
            if mine:
                with child_span("session.compile",
                                labels={"jobs": str(len(mine))}
                                ) as compile_span:
                    outcomes = self._execute(list(mine.values()), isolate)
                if len(outcomes) != len(mine):
                    raise ExperimentError(
                        f"executor {self.executor!r} returned "
                        f"{len(outcomes)} result(s) for a batch of "
                        f"{len(mine)} job(s); an executor must return "
                        f"exactly one result per job, in order"
                    )
                for fingerprint, outcome in zip(list(mine.keys()), outcomes):
                    if isinstance(outcome, JobFailure):
                        failures[fingerprint] = outcome
                    else:
                        resolved[fingerprint] = outcome
                        if self.disk_cache is not None:
                            self.disk_cache.put(fingerprint, outcome,
                                                job=mine[fingerprint])
                    self._settle(fingerprint, outcome)
                fresh = set(mine)
                if compile_span is not None:
                    # Bridge the PhaseTimer output into the waterfall:
                    # one synthesized compile span per fresh result with
                    # a phase.<name> child per phase — the compiler
                    # itself is never re-instrumented.
                    record_compile_spans(
                        compile_span,
                        [(job.program_label, resolved.get(fingerprint))
                         for fingerprint, job in mine.items()])
                if self.metrics is not None:
                    self._observe_compile_metrics(resolved, fresh)
                if self.disk_cache is not None:
                    flush = getattr(self.disk_cache, "flush_index", None)
                    if flush is not None:
                        flush()
        finally:
            # Settle whatever this call still owns so concurrent waiters
            # never hang, even when the executor raised out of the batch.
            self._abandon(mine)

        # Wait for fingerprints owned by concurrent batches; their
        # results land in our batch as cache hits, their failures as
        # failure entries (exactly as if this batch had run them).
        for fingerprint, flight in theirs.items():
            flight.event.wait()
            outcome = flight.outcome
            if isinstance(outcome, CompilationResult):
                resolved[fingerprint] = outcome
            elif isinstance(outcome, JobFailure):
                failures[fingerprint] = outcome
            else:
                job = next(j for j, f in zip(jobs, fingerprints)
                           if f == fingerprint)
                failures[fingerprint] = JobFailure(
                    program_name=job.program_label,
                    machine_name=job.machine.describe(),
                    policy_name=job.policy_label,
                    error_type="ExperimentError",
                    message="concurrent compilation of this job died "
                            "without producing a result",
                )

        if failures and not isolate:
            # Completed work is already cached (memory and disk), so
            # a rerun after fixing the bad job resumes warm.
            raise next(iter(failures.values())).to_exception()

        entries: List[SweepEntry] = []
        disk_credit = set(disk_restored)
        with self._lock:
            for job, fingerprint in zip(jobs, fingerprints):
                failed = fingerprint in failures
                # Failures are never cached, so every occurrence of a
                # failed job — including in-batch duplicates — is a miss.
                cached = not failed and fingerprint not in fresh
                if cached:
                    self.cache_hits += 1
                else:
                    self.cache_misses += 1
                    fresh.discard(fingerprint)  # later repeats are hits
                if failed:
                    entries.append(SweepEntry(job=job, result=None,
                                              error=failures[fingerprint],
                                              cached=False))
                else:
                    disk_hit = fingerprint in disk_credit
                    disk_credit.discard(fingerprint)
                    entries.append(SweepEntry(job=job,
                                              result=resolved[fingerprint],
                                              cached=cached,
                                              disk_hit=disk_hit))
        if self.verify:
            entries = self._verify_entries(entries)
        return SweepResult(entries)

    def _observe_compile_metrics(self, resolved: Dict[str, object],
                                 fresh) -> None:
        """Observe fresh compilations into the attached registry.

        Only genuinely compiled results count — cache and disk hits
        would re-observe stale durations and skew the histograms.
        """
        phases = self.metrics.histogram(
            "repro_compile_phase_seconds",
            "Exclusive per-phase compile seconds of fresh compilations.",
            labelnames=("phase",))
        totals = self.metrics.histogram(
            "repro_compile_seconds",
            "End-to-end compile seconds of fresh compilations.")
        for fingerprint in fresh:
            result = resolved.get(fingerprint)
            if result is None:
                continue
            totals.observe(result.compile_seconds)
            for phase, seconds in result.phase_seconds.items():
                phases.labels(phase=phase).observe(seconds)

    def _verify_entries(self,
                        entries: List[SweepEntry]) -> List[SweepEntry]:
        """Attach static-verifier reports to every successful entry.

        Runs outside the session lock (verification is read-only over
        immutable results); the per-fingerprint report memo is guarded
        like the result cache so concurrent batches verify a fingerprint
        at most once in the common case.
        """
        from dataclasses import replace as replace_entry

        from repro.verify import verify_result

        verified: List[SweepEntry] = []
        for entry in entries:
            if entry.result is None:
                verified.append(entry)
                continue
            fingerprint = entry.job.fingerprint()
            with self._lock:
                report = self._verify_cache.get(fingerprint)
            if report is None:
                report = verify_result(entry.result)
                with self._lock:
                    self._verify_cache[fingerprint] = report
                    self.verified_results += 1
                    self.verify_findings += len(report.findings)
                if self.events is not None and report.findings:
                    self.events.warning(
                        "verifier findings", component="verify",
                        fields={"benchmark": entry.job.program_label,
                                "findings": len(report.findings),
                                "rules": sorted({finding.rule for finding
                                                 in report.findings})})
            verified.append(replace_entry(entry, verification=report))
        return verified

    def _settle(self, fingerprint: str, outcome) -> None:
        """Publish an owned fingerprint's outcome and wake its waiters.

        Results enter the memo cache atomically with the flight's removal
        from the in-flight registry, so another batch always sees the
        fingerprint either in flight or cached — never neither.  Failures
        are removed without caching (the next batch retries them).
        """
        with self._lock:
            flight = self._inflight.pop(fingerprint, None)
            if isinstance(outcome, CompilationResult):
                self._cache[fingerprint] = outcome
        if flight is not None:
            flight.outcome = outcome
            flight.event.set()

    def _abandon(self, mine: Dict[str, CompileJob]) -> None:
        """Settle any still-owned flights with no outcome (error unwind)."""
        for fingerprint in mine:
            with self._lock:
                flight = self._inflight.pop(fingerprint, None)
            if flight is not None:
                flight.event.set()

    def _execute(self, jobs: List[CompileJob], isolate: bool) -> Sequence:
        """Dispatch one deduplicated batch to the executor.

        Even without isolation the built-in executors run in capturing
        mode: their successful outcomes make it back into the cache
        tiers before :meth:`run` re-raises the first failure.  Custom
        executors without ``run_isolated`` keep their native fail-fast
        ``run`` behaviour (unless isolation was requested, which then
        errors).
        """
        run_isolated = getattr(self.executor, "run_isolated", None)
        if run_isolated is not None:
            return run_isolated(jobs)
        if isolate:
            raise ExperimentError(
                f"executor {self.executor!r} does not support failure "
                f"isolation; give it a run_isolated(jobs) method or run "
                f"with isolate_failures=False"
            )
        return self.executor.run(jobs)

    def submit(self, job: CompileJob) -> CompilationResult:
        """Execute (or recall) a single job.

        Raises the job's library error even when the session defaults to
        failure isolation — a single-job submission has no batch to
        protect.
        """
        entry = self.run([job])[0]
        if entry.error is not None:
            raise entry.error.to_exception()
        return entry.result

    def compile(self, program_or_benchmark: Union[str, Program],
                machine: Optional[MachineSpec] = None,
                policy: str = "square",
                overrides: Optional[Dict[str, object]] = None,
                **config_overrides) -> CompilationResult:
        """Convenience single compilation by benchmark name or program.

        Args:
            program_or_benchmark: Registered benchmark name, or an
                in-memory :class:`~repro.ir.program.Program`.
            machine: Target machine spec; defaults to autosized NISQ.
            policy: Policy preset name.
            overrides: Benchmark size overrides (benchmark jobs only).
            config_overrides: :class:`~repro.core.compiler.CompilerConfig`
                field overrides, e.g. ``decompose_toffoli=True``.
        """
        machine = machine or MachineSpec.nisq_autosize()
        config = preset(policy, **config_overrides)
        if isinstance(program_or_benchmark, str):
            job = CompileJob(benchmark=program_or_benchmark, machine=machine,
                             config=config,
                             overrides=tuple(sorted((overrides or {}).items())))
        else:
            if overrides:
                raise ExperimentError(
                    "overrides= only apply to benchmark names; size an "
                    "in-memory program when you build it"
                )
            job = CompileJob(program=program_or_benchmark, machine=machine,
                             config=config)
        return self.submit(job)

    # ------------------------------------------------------------------
    def clear_cache(self) -> None:
        """Drop every memoized result (the disk tier is left intact)."""
        with self._lock:
            self._cache.clear()

    @property
    def cache_size(self) -> int:
        """Number of results memoized in memory."""
        return len(self._cache)

    def stats(self) -> Dict[str, object]:
        """Cache and executor statistics, JSON-compatible."""
        stats: Dict[str, object] = {
            "executor": repr(self.executor),
            "cache_size": self.cache_size,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "disk_hits": self.disk_hits,
        }
        if self.verify:
            stats["verify"] = {
                "verified_results": self.verified_results,
                "findings": self.verify_findings,
            }
        if self.disk_cache is not None:
            stats["disk_cache"] = self.disk_cache.stats()
        return stats

    def __repr__(self) -> str:
        disk = "" if self.disk_cache is None else f", disk={self.disk_cache!r}"
        return (f"Session(executor={self.executor!r}, "
                f"cached={self.cache_size}, hits={self.cache_hits}, "
                f"misses={self.cache_misses}{disk})")
