"""The compilation session: the single front door for running jobs.

A :class:`Session` owns an executor and a memo cache keyed by job
fingerprints.  Every consumer — the experiment modules, the CLI, the
examples, a future network service — submits work here, so batching,
caching and parallelism live in exactly one place::

    from repro.api import MachineSpec, Session, SweepSpec

    session = Session(jobs=4)                   # 4 worker processes
    spec = (SweepSpec()
            .with_benchmarks("RD53", "ADDER4")
            .with_machines(MachineSpec.nisq_grid(5, 5))
            .with_policies("lazy", "eager", "square"))
    sweep = session.run(spec)
    print(sweep.table("NISQ sweep"))
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.exceptions import ExperimentError
from repro.api.executors import ParallelExecutor, SerialExecutor
from repro.api.job import CompileJob, MachineSpec
from repro.api.sweep import SweepEntry, SweepResult, SweepSpec
from repro.core.compiler import preset
from repro.core.result import CompilationResult
from repro.ir.program import Program


class Session:
    """Executes compile jobs with memoization and a pluggable executor.

    Identical jobs (same fingerprint) compile once per session; repeats
    are served from the cache, which makes overlapping sweeps — e.g. the
    three Figure 8 panels over the same benchmark suite — almost free
    after the first one.

    Args:
        executor: Explicit executor instance; any object with a
            ``run(jobs) -> results`` method works.
        jobs: Shorthand when ``executor`` is None: 1 builds a
            :class:`~repro.api.executors.SerialExecutor`, more builds a
            :class:`~repro.api.executors.ParallelExecutor` with that many
            worker processes.
    """

    def __init__(self, executor=None, jobs: int = 1) -> None:
        if executor is None:
            executor = SerialExecutor() if jobs <= 1 else ParallelExecutor(jobs)
        self.executor = executor
        self._cache: Dict[str, CompilationResult] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    def run(self, work: Union[SweepSpec, Sequence[CompileJob]]) -> SweepResult:
        """Execute a sweep spec or an explicit job list.

        Duplicate jobs inside one batch execute once; results come back
        in submission order regardless of executor.
        """
        jobs = work.jobs() if isinstance(work, SweepSpec) else list(work)
        fingerprints = [job.fingerprint() for job in jobs]

        pending: Dict[str, CompileJob] = {}
        for job, fingerprint in zip(jobs, fingerprints):
            if fingerprint not in self._cache and fingerprint not in pending:
                pending[fingerprint] = job
        fresh = set(pending)
        if pending:
            results = self.executor.run(list(pending.values()))
            self._cache.update(zip(pending.keys(), results))

        entries: List[SweepEntry] = []
        for job, fingerprint in zip(jobs, fingerprints):
            cached = fingerprint not in fresh
            if cached:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
                fresh.discard(fingerprint)  # later repeats in-batch are hits
            entries.append(SweepEntry(job=job, result=self._cache[fingerprint],
                                      cached=cached))
        return SweepResult(entries)

    def submit(self, job: CompileJob) -> CompilationResult:
        """Execute (or recall) a single job."""
        return self.run([job])[0].result

    def compile(self, program_or_benchmark: Union[str, Program],
                machine: Optional[MachineSpec] = None,
                policy: str = "square",
                overrides: Optional[Dict[str, object]] = None,
                **config_overrides) -> CompilationResult:
        """Convenience single compilation by benchmark name or program.

        Args:
            program_or_benchmark: Registered benchmark name, or an
                in-memory :class:`~repro.ir.program.Program`.
            machine: Target machine spec; defaults to autosized NISQ.
            policy: Policy preset name.
            overrides: Benchmark size overrides (benchmark jobs only).
            config_overrides: :class:`~repro.core.compiler.CompilerConfig`
                field overrides, e.g. ``decompose_toffoli=True``.
        """
        machine = machine or MachineSpec.nisq_autosize()
        config = preset(policy, **config_overrides)
        if isinstance(program_or_benchmark, str):
            job = CompileJob(benchmark=program_or_benchmark, machine=machine,
                             config=config,
                             overrides=tuple(sorted((overrides or {}).items())))
        else:
            if overrides:
                raise ExperimentError(
                    "overrides= only apply to benchmark names; size an "
                    "in-memory program when you build it"
                )
            job = CompileJob(program=program_or_benchmark, machine=machine,
                             config=config)
        return self.submit(job)

    # ------------------------------------------------------------------
    def clear_cache(self) -> None:
        """Drop every memoized result."""
        self._cache.clear()

    @property
    def cache_size(self) -> int:
        """Number of memoized results."""
        return len(self._cache)

    def __repr__(self) -> str:
        return (f"Session(executor={self.executor!r}, "
                f"cached={self.cache_size}, hits={self.cache_hits}, "
                f"misses={self.cache_misses})")
