"""Compile jobs: the unit of work submitted to a :class:`~repro.api.Session`.

A :class:`CompileJob` bundles everything one compilation needs — the
program (by benchmark name or as an in-memory :class:`~repro.ir.program.Program`),
a declarative :class:`MachineSpec`, and a
:class:`~repro.core.compiler.CompilerConfig` — in a frozen, picklable
form, so jobs can be fanned out to worker processes and memoized by a
stable :meth:`~CompileJob.fingerprint`.

:func:`execute_job` is the single place a job turns into a
:class:`~repro.core.result.CompilationResult`; both executors call it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.exceptions import (
    ExperimentError,
    ReproError,
    ResourceExhaustedError,
)
from repro.arch.ft import FTMachine
from repro.arch.machine import IdealMachine, Machine
from repro.arch.nisq import NISQMachine
from repro.core.compiler import (
    POLICY_PRESETS,
    CompilerConfig,
    SquareCompiler,
    preset,
)
from repro.core.result import CompilationResult, JobFailure
from repro.ir.program import CallStmt, GateStmt, Program, QModule
from repro.workloads.registry import canonical_benchmark_name, load_benchmark

#: Machine kinds a :class:`MachineSpec` can describe.
MACHINE_KINDS = ("nisq", "nisq-full", "ft", "ideal")


@dataclass(frozen=True)
class MachineSpec:
    """Declarative, picklable description of a target machine.

    Unlike a live :class:`~repro.arch.machine.Machine` (which carries
    routers, braid trackers and other mutable state), a spec is pure data:
    it can cross process boundaries and participate in job fingerprints,
    and every job builds a fresh machine from it so concurrent
    compilations never share communication state.

    Attributes:
        kind: ``"nisq"`` (lattice, swap chains), ``"nisq-full"``
            (all-to-all NISQ), ``"ft"`` (surface code, braiding) or
            ``"ideal"`` (fully connected, zero-cost communication).
        num_qubits: Machine size for the near-square/full topologies.
        rows: Explicit lattice rows (with ``cols``, NISQ/FT only).
        cols: Explicit lattice columns.
        autosize: Grow the machine (doubling from ``start_qubits``) until
            the program fits, like the paper's machine-size sweeps.
        start_qubits: First size tried when autosizing.
        max_qubits: Autosize gives up (re-raising
            :class:`~repro.exceptions.ResourceExhaustedError`) beyond this.
    """

    kind: str = "nisq"
    num_qubits: Optional[int] = None
    rows: Optional[int] = None
    cols: Optional[int] = None
    autosize: bool = False
    start_qubits: int = 32
    max_qubits: int = 1 << 16

    def __post_init__(self) -> None:
        if self.kind not in MACHINE_KINDS:
            raise ExperimentError(
                f"unknown machine kind {self.kind!r}; choose from "
                f"{list(MACHINE_KINDS)}"
            )
        if (self.rows is None) != (self.cols is None):
            raise ExperimentError(
                "MachineSpec needs both rows and cols (or neither)"
            )
        if self.num_qubits is not None and self.rows is not None:
            raise ExperimentError(
                "MachineSpec takes num_qubits or rows+cols, not both"
            )
        if not self.autosize and self.num_qubits is None and self.rows is None:
            raise ExperimentError(
                "MachineSpec needs num_qubits, rows+cols, or autosize=True"
            )
        if self.kind in ("nisq-full", "ideal") and self.rows is not None:
            raise ExperimentError(
                f"machine kind {self.kind!r} is fully connected; "
                f"use num_qubits instead of rows/cols"
            )
        if self.autosize and (self.rows is not None or
                              self.num_qubits is not None):
            raise ExperimentError(
                "autosize=True conflicts with a fixed size; drop "
                "num_qubits/rows/cols or drop autosize"
            )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def nisq_grid(cls, rows: int, cols: int) -> "MachineSpec":
        """A fixed ``rows x cols`` NISQ lattice."""
        return cls(kind="nisq", rows=rows, cols=cols)

    @classmethod
    def nisq(cls, num_qubits: int) -> "MachineSpec":
        """A NISQ lattice on the smallest near-square grid of that size."""
        return cls(kind="nisq", num_qubits=num_qubits)

    @classmethod
    def nisq_full(cls, num_qubits: int) -> "MachineSpec":
        """A fully-connected NISQ machine (no swaps needed)."""
        return cls(kind="nisq-full", num_qubits=num_qubits)

    @classmethod
    def ft(cls, num_qubits: int) -> "MachineSpec":
        """A surface-code FT machine of at least that many logical qubits."""
        return cls(kind="ft", num_qubits=num_qubits)

    @classmethod
    def ideal(cls, num_qubits: int) -> "MachineSpec":
        """A fully-connected machine with zero communication cost."""
        return cls(kind="ideal", num_qubits=num_qubits)

    @classmethod
    def nisq_autosize(cls, start_qubits: int = 32,
                      max_qubits: int = 1 << 16) -> "MachineSpec":
        """NISQ lattices grown until the program fits."""
        return cls(kind="nisq", autosize=True, start_qubits=start_qubits,
                   max_qubits=max_qubits)

    @classmethod
    def ft_autosize(cls, start_qubits: int = 32,
                    max_qubits: int = 1 << 16) -> "MachineSpec":
        """FT machines grown until the program fits."""
        return cls(kind="ft", autosize=True, start_qubits=start_qubits,
                   max_qubits=max_qubits)

    # ------------------------------------------------------------------
    def build(self, num_qubits: Optional[int] = None) -> Machine:
        """Instantiate a live machine of this spec.

        Args:
            num_qubits: Size override used by the autosize loop; defaults
                to the spec's own fixed size.
        """
        size = num_qubits if num_qubits is not None else self.num_qubits
        if size is None and self.rows is None:
            raise ExperimentError(
                "autosize MachineSpec needs an explicit num_qubits to build; "
                "the autosize search in execute_job supplies one per attempt"
            )
        if self.kind == "nisq":
            if self.rows is not None and self.cols is not None:
                return NISQMachine.grid(self.rows, self.cols)
            return NISQMachine.with_qubits(size)
        if self.kind == "nisq-full":
            return NISQMachine.fully_connected(size)
        if self.kind == "ft":
            if self.rows is not None and self.cols is not None:
                return FTMachine.grid(self.rows, self.cols)
            return FTMachine.with_qubits(size)
        return IdealMachine(size)

    def describe(self) -> str:
        """Short human-readable label for reports."""
        if self.autosize:
            return f"{self.kind}-auto(start={self.start_qubits})"
        if self.rows is not None:
            return f"{self.kind}-{self.rows}x{self.cols}"
        return f"{self.kind}-{self.num_qubits}"

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Serialize to a JSON-compatible dictionary of spec fields."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MachineSpec":
        """Rebuild a spec from :meth:`to_dict` output (or a subset of it).

        Raises:
            ExperimentError: On unknown keys, or any combination the
                constructor itself rejects.
        """
        valid = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - valid)
        if unknown:
            raise ExperimentError(
                f"unknown MachineSpec field(s) {unknown}; "
                f"valid fields: {sorted(valid)}"
            )
        return cls(**dict(data))


def config_to_dict(config: CompilerConfig) -> Dict[str, object]:
    """Serialize a :class:`~repro.core.compiler.CompilerConfig` to a dict."""
    return {f.name: getattr(config, f.name) for f in fields(config)}


def config_from_dict(data: Mapping[str, object]) -> CompilerConfig:
    """Rebuild a :class:`~repro.core.compiler.CompilerConfig` from a dict.

    Raises:
        ExperimentError: If the dict names unknown config fields.
    """
    valid = {f.name for f in fields(CompilerConfig)}
    unknown = sorted(set(data) - valid)
    if unknown:
        raise ExperimentError(
            f"unknown CompilerConfig field(s) {unknown}; "
            f"valid fields: {sorted(valid)}"
        )
    return CompilerConfig(**dict(data))


def _program_signature(program: Program) -> str:
    """Content hash of a program's full statement tree.

    Walks every module reachable from the entry, serialising gates and
    calls with module-local qubit indices, so two in-memory programs get
    the same signature exactly when they describe the same computation —
    matching names/counts alone are not enough to collide a fingerprint.
    """
    parts: list = []
    refs: Dict[int, int] = {}

    def visit(module: QModule) -> int:
        if id(module) in refs:
            return refs[id(module)]
        ref = len(refs)
        refs[id(module)] = ref
        local = {id(qubit): index for index, qubit in
                 enumerate(tuple(module.params) + tuple(module.ancillas))}
        header = (f"m{ref}={module.name}/{len(module.params)}"
                  f"/{module.num_ancilla}")
        body = [header]
        for tag, block in (("C", module.compute), ("S", module.store),
                           ("U", module.uncompute or ())):
            body.append(tag)
            for stmt in block:
                if isinstance(stmt, GateStmt):
                    operands = ",".join(str(local[id(q)]) for q in stmt.qubits)
                    body.append(f"g:{stmt.name}:{operands}")
                else:
                    child = visit(stmt.module)
                    operands = ",".join(str(local[id(q)]) for q in stmt.args)
                    body.append(f"c:{child}:{operands}")
        parts.append("|".join(body))
        return ref

    visit(program.entry)
    digest = hashlib.sha256(";".join(parts).encode("utf-8"))
    return digest.hexdigest()


def autosize_compile(program: Program,
                     machine_for: Callable[[int], Machine],
                     config: CompilerConfig,
                     start_qubits: int = 32,
                     max_qubits: int = 1 << 16) -> CompilationResult:
    """Compile, growing the machine until the program fits.

    The single implementation of the paper's machine-size search, shared
    by :func:`execute_job` (for autosizing specs) and the legacy
    :func:`repro.experiments.runner.compile_with_autosize` helper: start
    at ``max(start_qubits, entry params + 4)`` and double on
    :class:`~repro.exceptions.ResourceExhaustedError` up to ``max_qubits``
    (beyond which the error propagates).

    Every attempted size is clamped to ``max_qubits``: when a doubling
    overshoots the cap (say ``start_qubits=64, max_qubits=100``), the
    search tries exactly ``max_qubits`` rather than compiling on a
    machine larger than the caller allowed, and only re-raises after
    that capped attempt fails.
    """
    qubits = min(max(start_qubits, program.entry.num_params + 4), max_qubits)
    while True:
        machine = machine_for(qubits)
        try:
            return SquareCompiler(machine, config).compile(program)
        except ResourceExhaustedError:
            if qubits >= max_qubits:
                raise
            qubits = min(qubits * 2, max_qubits)


@dataclass(frozen=True)
class CompileJob:
    """One compilation request: program x machine x compiler config.

    Exactly one of ``benchmark`` / ``program`` must be set.  Benchmark
    jobs are fully declarative — the worker process loads the program
    itself — while program jobs carry the in-memory
    :class:`~repro.ir.program.Program` (still picklable, but heavier to
    ship to workers).

    Attributes:
        benchmark: Registered benchmark name (case insensitive).
        program: In-memory program, for workloads outside the registry.
        machine: Target machine spec.
        config: Compiler configuration (policy pair, flags).
        overrides: Benchmark size overrides as a sorted tuple of
            ``(key, value)`` pairs; dicts are accepted and normalised.
    """

    benchmark: Optional[str] = None
    program: Optional[Program] = None
    machine: MachineSpec = MachineSpec.nisq_autosize()
    config: CompilerConfig = POLICY_PRESETS["square"]
    overrides: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if (self.benchmark is None) == (self.program is None):
            raise ExperimentError(
                "CompileJob needs exactly one of benchmark= or program="
            )
        if isinstance(self.overrides, dict):
            object.__setattr__(self, "overrides",
                               tuple(sorted(self.overrides.items())))
        else:
            object.__setattr__(self, "overrides",
                               tuple(sorted(tuple(pair) for pair in
                                            self.overrides)))
        if self.benchmark is not None:
            # Canonicalise eagerly so equal jobs spelled with different
            # capitalisation share one fingerprint (and one cache slot).
            object.__setattr__(self, "benchmark",
                               canonical_benchmark_name(self.benchmark))

    # ------------------------------------------------------------------
    @classmethod
    def for_benchmark(cls, name: str, machine: MachineSpec,
                      policy: str = "square",
                      overrides: Optional[Dict[str, object]] = None,
                      **config_overrides) -> "CompileJob":
        """Build a benchmark job from a policy preset name."""
        return cls(benchmark=name, machine=machine,
                   config=preset(policy, **config_overrides),
                   overrides=tuple(sorted((overrides or {}).items())))

    @property
    def program_label(self) -> str:
        """Display name of the job's program."""
        return self.benchmark if self.benchmark else self.program.name

    @property
    def policy_label(self) -> str:
        """Display name of the job's policy configuration."""
        return self.config.policy_name

    def load_program(self) -> Program:
        """Materialise the program this job compiles."""
        if self.program is not None:
            return self.program
        return load_benchmark(self.benchmark, **dict(self.overrides))

    # ------------------------------------------------------------------
    def descriptor(self) -> Dict[str, object]:
        """Canonical JSON-compatible description used for fingerprinting.

        Benchmark jobs are identified by name + overrides.  Program jobs
        are identified by a content hash of the full statement tree, so
        two in-memory programs share a fingerprint (and a cache slot)
        exactly when they describe the same computation.
        """
        if self.benchmark is not None:
            program_key: object = {"benchmark": self.benchmark,
                                   "overrides": list(map(list, self.overrides))}
        else:
            program_key = {
                "program": self.program.name,
                "signature": _program_signature(self.program),
            }
        return {
            "program": program_key,
            "machine": self.machine.to_dict(),
            "config": config_to_dict(self.config),
        }

    def fingerprint(self) -> str:
        """Stable hex digest identifying this job across runs and processes."""
        canonical = json.dumps(self.descriptor(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Serialize to the JSON descriptor the network service accepts.

        Only benchmark jobs serialize — the whole point of a descriptor
        is that the server materialises the program itself.

        Raises:
            ExperimentError: For in-memory program jobs.
        """
        if self.program is not None:
            raise ExperimentError(
                f"program job {self.program.name!r} cannot be serialized "
                f"to a JSON descriptor; register it as a benchmark "
                f"(repro.workloads.register_benchmark) and submit by name"
            )
        return {
            "benchmark": self.benchmark,
            "machine": self.machine.to_dict(),
            "config": config_to_dict(self.config),
            "overrides": [[key, value] for key, value in self.overrides],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CompileJob":
        """Rebuild a job from a JSON descriptor.

        Accepts both the exact :meth:`to_dict` shape and the friendlier
        hand-written form the HTTP endpoint documents: ``machine`` may be
        omitted (autosized NISQ), and ``policy`` may name a preset, with
        ``config`` then holding only the fields to override.

        Raises:
            ExperimentError: On unknown keys, a missing benchmark name,
                or config/machine contents their own parsers reject.
        """
        allowed = {"benchmark", "machine", "config", "policy", "overrides"}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ExperimentError(
                f"unknown CompileJob descriptor key(s) {unknown}; "
                f"valid keys: {sorted(allowed)}"
            )
        benchmark = data.get("benchmark")
        if not benchmark:
            raise ExperimentError(
                "job descriptor needs a 'benchmark' name; in-memory "
                "programs cannot cross the service boundary"
            )
        machine = data.get("machine")
        if machine is None:
            machine = MachineSpec.nisq_autosize()
        elif isinstance(machine, Mapping):
            machine = MachineSpec.from_dict(machine)
        policy = data.get("policy")
        config_data = data.get("config") or {}
        if policy is not None:
            config = preset(policy, **dict(config_data))
        elif config_data:
            config = config_from_dict(config_data)
        else:
            config = POLICY_PRESETS["square"]
        overrides = data.get("overrides") or ()
        if not isinstance(overrides, Mapping):
            overrides = tuple(tuple(pair) for pair in overrides)
        return cls(benchmark=benchmark, machine=machine, config=config,
                   overrides=overrides)


def execute_job(job: CompileJob) -> CompilationResult:
    """Run one job to completion (the worker-side entry point).

    Autosizing specs run the shared :func:`autosize_compile` search, so
    results are identical to the legacy
    :func:`repro.experiments.runner.compile_with_autosize` helper.
    """
    program = job.load_program()
    spec = job.machine
    if not spec.autosize:
        return SquareCompiler(spec.build(), job.config).compile(program)
    return autosize_compile(program, spec.build, job.config,
                            start_qubits=spec.start_qubits,
                            max_qubits=spec.max_qubits)


def execute_job_to_dict(job: CompileJob) -> Dict[str, object]:
    """Execute a job and return the result in serialized form.

    Shipping :meth:`~repro.core.result.CompilationResult.to_dict` output
    between processes is cheaper than pickling the nested dataclasses,
    especially with ``record_schedule=False`` where the dict is tiny.
    """
    return execute_job(job).to_dict()


def job_failure(job: CompileJob, error: Exception) -> JobFailure:
    """Capture an exception as a structured, serializable failure record."""
    return JobFailure(
        program_name=job.program_label,
        machine_name=job.machine.describe(),
        policy_name=job.policy_label,
        error_type=type(error).__name__,
        message=str(error),
    )


def execute_job_payload(job: CompileJob) -> Dict[str, object]:
    """Execute a job, capturing library failures (worker-side entry point).

    The parallel executor maps this over its pool: success and failure
    both come back as small JSON-compatible payloads, so one impossible
    job can neither tear down the whole ``pool.map`` nor lose track of
    which job it was.  Programming errors (anything that is not a
    :class:`~repro.exceptions.ReproError`) still propagate raw.
    """
    try:
        result = execute_job(job)
        # phase_seconds is telemetry-only and deliberately absent from
        # to_dict(); the executor envelope carries it across the process
        # boundary so fresh compiles still report their phase profile.
        return {"ok": True, "result": result.to_dict(),
                "phase_seconds": dict(result.phase_seconds)}
    except ReproError as error:
        return {"ok": False, "failure": job_failure(job, error).to_dict()}
