"""Sweep specs and sweep results.

:class:`SweepSpec` expands benchmarks x machines x policies x scales into
an ordered :class:`~repro.api.job.CompileJob` list; a
:class:`~repro.api.session.Session` executes it into a
:class:`SweepResult`, which supports filtering, tabulation and JSON/CSV
export — the shape every experiment module and the CLI share.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.verify.diagnostics import VerificationReport

from repro.exceptions import ExperimentError
from repro.api.job import (
    CompileJob,
    MachineSpec,
    config_from_dict,
    config_to_dict,
)
from repro.core.compiler import CompilerConfig, preset
from repro.core.result import CompilationResult, JobFailure
from repro.workloads.registry import SCALES, benchmark_overrides

#: A policy is a preset name (``"square"``) or an explicit config.
PolicyLike = Union[str, CompilerConfig]


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a compilation sweep.

    The job list is the cartesian product ``scales x benchmarks x
    machines x policies``, in that nesting order (policies innermost), so
    rows group naturally by benchmark the way the paper's tables do.
    ``with_*`` methods return updated copies, allowing builder-style
    chaining::

        spec = (SweepSpec()
                .with_benchmarks("RD53", "ADDER4")
                .with_machines(MachineSpec.nisq_grid(5, 5))
                .with_policies("lazy", "square")
                .with_config(decompose_toffoli=True))
        result = Session(jobs=4).run(spec)

    Attributes:
        benchmarks: Registered benchmark names.
        machines: Target machine specs.
        policies: Policy preset names or explicit configs.
        scales: Benchmark size scales (``"quick"``/``"laptop"``/``"paper"``);
            scaling only affects benchmarks with registered overrides.
        config_overrides: :class:`~repro.core.compiler.CompilerConfig`
            field overrides applied to every named-preset policy.
    """

    benchmarks: Sequence[str] = ()
    machines: Sequence[MachineSpec] = (MachineSpec.nisq_autosize(),)
    policies: Sequence[PolicyLike] = ("lazy", "eager", "square-laa", "square")
    scales: Sequence[str] = ("laptop",)
    config_overrides: Mapping[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def with_benchmarks(self, *names: str) -> "SweepSpec":
        """Copy of this spec targeting the given benchmarks."""
        return replace(self, benchmarks=tuple(names))

    def with_machines(self, *machines: MachineSpec) -> "SweepSpec":
        """Copy of this spec targeting the given machines."""
        return replace(self, machines=tuple(machines))

    def with_policies(self, *policies: PolicyLike) -> "SweepSpec":
        """Copy of this spec evaluating the given policies."""
        return replace(self, policies=tuple(policies))

    def with_scales(self, *scales: str) -> "SweepSpec":
        """Copy of this spec at the given benchmark scales."""
        return replace(self, scales=tuple(scales))

    def with_config(self, **overrides) -> "SweepSpec":
        """Copy of this spec with extra compiler-config overrides."""
        merged = {**dict(self.config_overrides), **overrides}
        return replace(self, config_overrides=merged)

    # ------------------------------------------------------------------
    def _resolve_config(self, policy: PolicyLike) -> CompilerConfig:
        if isinstance(policy, CompilerConfig):
            return policy
        return preset(policy, **dict(self.config_overrides))

    def jobs(self) -> List[CompileJob]:
        """Expand the sweep into its ordered job list."""
        if not self.benchmarks:
            raise ExperimentError("SweepSpec has no benchmarks to expand")
        for scale in self.scales:
            if scale not in SCALES:
                raise ExperimentError(
                    f"unknown scale {scale!r}; use one of {list(SCALES)}"
                )
        expanded: List[CompileJob] = []
        for scale in self.scales:
            for benchmark in self.benchmarks:
                overrides = benchmark_overrides(benchmark, scale)
                for machine in self.machines:
                    for policy in self.policies:
                        expanded.append(CompileJob(
                            benchmark=benchmark,
                            machine=machine,
                            config=self._resolve_config(policy),
                            overrides=tuple(sorted(overrides.items())),
                        ))
        return expanded

    def __len__(self) -> int:
        return (len(self.scales) * len(self.benchmarks) * len(self.machines)
                * len(self.policies))

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Serialize to the JSON descriptor the network service accepts.

        Named policies serialize as their names; explicit
        :class:`~repro.core.compiler.CompilerConfig` policies as full
        field dicts.
        """
        return {
            "benchmarks": list(self.benchmarks),
            "machines": [machine.to_dict() for machine in self.machines],
            "policies": [policy if isinstance(policy, str)
                         else config_to_dict(policy)
                         for policy in self.policies],
            "scales": list(self.scales),
            "config_overrides": dict(self.config_overrides),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        """Rebuild a spec from a JSON descriptor; absent keys keep defaults.

        Raises:
            ExperimentError: On unknown keys or malformed machine/policy
                entries.
        """
        allowed = {"benchmarks", "machines", "policies", "scales",
                   "config_overrides"}
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ExperimentError(
                f"unknown SweepSpec descriptor key(s) {unknown}; "
                f"valid keys: {sorted(allowed)}"
            )
        kwargs: Dict[str, object] = {}
        if "benchmarks" in data:
            kwargs["benchmarks"] = tuple(data["benchmarks"])
        if "machines" in data:
            kwargs["machines"] = tuple(
                machine if isinstance(machine, MachineSpec)
                else MachineSpec.from_dict(machine)
                for machine in data["machines"]
            )
        if "policies" in data:
            kwargs["policies"] = tuple(
                policy if isinstance(policy, str)
                else config_from_dict(policy)
                for policy in data["policies"]
            )
        if "scales" in data:
            kwargs["scales"] = tuple(data["scales"])
        if "config_overrides" in data:
            kwargs["config_overrides"] = dict(data["config_overrides"])
        return cls(**kwargs)


#: Headline metric columns shared by every sweep row.
ROW_METRIC_KEYS = ("gates", "qubits", "peak_live", "depth", "swaps", "aqv",
                   "uncompute_gates")


@dataclass(frozen=True)
class SweepEntry:
    """One executed job inside a :class:`SweepResult`.

    Attributes:
        job: The job as submitted.
        result: Its compilation result, or None when the job failed
            under failure isolation.
        error: The structured failure record when the job raised instead
            of completing (failure isolation only); None on success.
        cached: True when the session served the result from its memo
            cache instead of executing the job.
        disk_hit: True when the result was restored from the session's
            persistent disk tier during this run (a subset of
            ``cached``); False for pure memory hits and fresh compiles.
        verification: Static-verifier report for the result when the
            session ran with ``verify=True``
            (a :class:`~repro.verify.diagnostics.VerificationReport`);
            None when verification was off or the job failed.
    """

    job: CompileJob
    result: Optional[CompilationResult]
    error: Optional[JobFailure] = None
    cached: bool = False
    disk_hit: bool = False
    verification: Optional["VerificationReport"] = None

    def __post_init__(self) -> None:
        if (self.result is None) == (self.error is None):
            raise ExperimentError(
                "SweepEntry needs exactly one of result= or error="
            )

    @property
    def ok(self) -> bool:
        """True when the job produced a result."""
        return self.error is None

    def row(self) -> Dict[str, object]:
        """Flat table row: job coordinates + headline metrics.

        Failed entries keep the same coordinate columns, leave the metric
        columns empty, and add an ``error`` column, so mixed sweeps still
        tabulate and export cleanly.
        """
        row: Dict[str, object] = {
            "benchmark": self.job.program_label,
            "policy": self.job.policy_label,
        }
        if self.error is not None:
            row["machine"] = self.error.machine_name
            for key in ROW_METRIC_KEYS:
                row[key] = ""
            row["error"] = self.error.describe()
            return row
        row["machine"] = self.result.machine_name
        summary = self.result.summary()
        for key in ROW_METRIC_KEYS:
            row[key] = summary[key]
        if self.verification is not None:
            if self.verification.findings:
                rules = ",".join(self.verification.rules_violated())
                row["verify"] = (f"{len(self.verification.findings)} "
                                 f"finding(s) [{rules}]")
            else:
                row["verify"] = "ok"
        return row


class SweepResult:
    """Ordered collection of executed sweep entries.

    Supports list-style access, coordinate filtering, tabulation through
    :func:`repro.analysis.report.format_table`, and JSON/CSV export.
    """

    def __init__(self, entries: Sequence[SweepEntry]) -> None:
        self.entries = list(entries)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[SweepEntry]:
        return iter(self.entries)

    def __getitem__(self, index: int) -> SweepEntry:
        return self.entries[index]

    def results(self) -> List[Optional[CompilationResult]]:
        """Every result, in job-submission order.

        Entries that failed under failure isolation contribute None;
        check :attr:`ok` or :meth:`failures` first when a batch may
        contain failures.
        """
        return [entry.result for entry in self.entries]

    def failures(self) -> List[SweepEntry]:
        """The entries whose jobs failed, in job-submission order."""
        return [entry for entry in self.entries if not entry.ok]

    def verification_failures(self) -> List[SweepEntry]:
        """Entries whose attached verification report has findings.

        Empty both when every verified entry is clean and when the sweep
        ran without verification (no reports attached at all).
        """
        return [entry for entry in self.entries
                if entry.verification is not None
                and entry.verification.findings]

    @property
    def ok(self) -> bool:
        """True when every entry completed successfully."""
        return all(entry.ok for entry in self.entries)

    @property
    def cache_hits(self) -> int:
        """How many entries were served from the session cache."""
        return sum(1 for entry in self.entries if entry.cached)

    # ------------------------------------------------------------------
    def filter(self, benchmark: Optional[str] = None,
               policy: Optional[str] = None,
               machine: Optional[MachineSpec] = None) -> "SweepResult":
        """Entries matching every given coordinate (case-insensitive names)."""
        kept = []
        for entry in self.entries:
            if benchmark is not None and (
                    entry.job.program_label.lower() != benchmark.lower()):
                continue
            if policy is not None and (
                    entry.job.policy_label.lower() != policy.lower()):
                continue
            if machine is not None and entry.job.machine != machine:
                continue
            kept.append(entry)
        return SweepResult(kept)

    def get(self, benchmark: Optional[str] = None,
            policy: Optional[str] = None,
            machine: Optional[MachineSpec] = None) -> CompilationResult:
        """The unique result at the given coordinates.

        Raises:
            ExperimentError: If no entry, or more than one, matches.
            ReproError: The matched job's own error, when it failed under
                failure isolation.
        """
        matches = self.filter(benchmark=benchmark, policy=policy,
                              machine=machine)
        if len(matches) != 1:
            raise ExperimentError(
                f"expected exactly one result for benchmark={benchmark!r} "
                f"policy={policy!r}, found {len(matches)}"
            )
        entry = matches[0]
        if entry.error is not None:
            raise entry.error.to_exception()
        return entry.result

    def suite(self, benchmark: Optional[str] = None,
              machine: Optional[MachineSpec] = None
              ) -> Dict[str, CompilationResult]:
        """Results keyed by policy label, in execution order.

        The shape the analysis helpers (e.g.
        :func:`repro.analysis.metrics.normalized_aqv`) consume.

        Raises:
            ExperimentError: If two in-scope entries share a policy label
                (i.e. the scope still spans several machines or scales) —
                narrow it with ``benchmark``/``machine`` filters first.
            ReproError: An in-scope job's own error, when it failed under
                failure isolation — a suite of results must not silently
                hold a None.
        """
        scoped = self.filter(benchmark=benchmark, machine=machine)
        suite: Dict[str, CompilationResult] = {}
        for entry in scoped:
            if entry.error is not None:
                raise entry.error.to_exception()
            label = entry.job.policy_label
            if label in suite:
                raise ExperimentError(
                    f"suite() scope is ambiguous: several entries share "
                    f"policy label {label!r}; filter by benchmark/machine "
                    f"(or iterate filter() results) instead"
                )
            suite[label] = entry.result
        return suite

    # ------------------------------------------------------------------
    def rows(self) -> List[Dict[str, object]]:
        """Flat table rows for every entry.

        When any entry failed, every row carries the ``error`` column
        (empty for successes) so the row schema stays uniform for CSV
        export and table rendering.
        """
        rows = [entry.row() for entry in self.entries]
        for column in ("verify", "error"):
            if any(column in row for row in rows):
                for row in rows:
                    row.setdefault(column, "")
        return rows

    def table(self, title: Optional[str] = None) -> str:
        """Aligned text table of the headline metrics."""
        from repro.analysis.report import format_comparison, format_table

        if title:
            return format_comparison(title, self.rows())
        return format_table(self.rows())

    def to_json(self, path: Optional[str] = None, *,
                full: bool = False) -> str:
        """Serialize to JSON (headline rows, or full results with ``full``).

        Args:
            path: Optional file to write; the JSON text is returned either
                way.
            full: Export complete
                :meth:`~repro.core.result.CompilationResult.to_dict`
                payloads instead of headline rows.
        """
        from repro.analysis.report import export_rows

        if full:
            rows: List[Dict[str, object]] = [
                {"benchmark": entry.job.program_label,
                 "policy": entry.job.policy_label,
                 "fingerprint": entry.job.fingerprint(),
                 "ok": entry.ok,
                 **({"result": entry.result.to_dict()} if entry.ok
                    else {"error": entry.error.to_dict()})}
                for entry in self.entries
            ]
        else:
            rows = self.rows()
        return export_rows(rows, path=path, fmt="json")

    def to_csv(self, path: Optional[str] = None) -> str:
        """Serialize the headline rows to CSV (optionally writing ``path``)."""
        from repro.analysis.report import export_rows

        return export_rows(self.rows(), path=path, fmt="csv")

    def __repr__(self) -> str:
        return (f"SweepResult(entries={len(self.entries)}, "
                f"cache_hits={self.cache_hits})")
