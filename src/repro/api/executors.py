"""Job executors: serial and multiprocessing-parallel batch execution.

An executor turns an ordered list of :class:`~repro.api.job.CompileJob`
into the matching ordered list of
:class:`~repro.core.result.CompilationResult`.  Both executors call the
same :func:`~repro.api.job.execute_job`, so for a deterministic compiler
(and the SQUARE walk is deterministic) they produce identical results —
the parallel executor only changes wall-clock time, never numbers.

Each executor offers two batch modes:

* ``run(jobs)`` — all-or-nothing: the first failing job raises.  The
  parallel executor labels the propagated error with the failing job's
  benchmark/policy/machine, since a bare worker traceback does not say
  which of the fanned-out jobs died.
* ``run_isolated(jobs)`` — per-job isolation: failing jobs yield
  structured :class:`~repro.core.result.JobFailure` entries in place of
  results, so one impossible request cannot kill a whole batch.  This is
  the mode the network service runs in.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Union

from repro.api.job import CompileJob, execute_job, execute_job_payload
from repro.core.result import CompilationResult, JobFailure

#: What one isolated job execution yields.
JobOutcome = Union[CompilationResult, JobFailure]


def _outcome_from_payload(payload: dict) -> JobOutcome:
    """Decode one :func:`~repro.api.job.execute_job_payload` payload."""
    if payload["ok"]:
        result = CompilationResult.from_dict(payload["result"])
        # Re-attach the envelope-carried phase profile (to_dict() stays
        # timing-free on purpose; see CompilationResult.phase_seconds).
        result.phase_seconds.update(payload.get("phase_seconds") or {})
        return result
    return JobFailure.from_dict(payload["failure"])


def _raise_first_failure(outcomes: Sequence[JobOutcome]) -> None:
    """Re-raise the first captured failure, labelled with its job."""
    for outcome in outcomes:
        if isinstance(outcome, JobFailure):
            raise outcome.to_exception()


class SerialExecutor:
    """Run jobs one after another in the calling process."""

    def run(self, jobs: Sequence[CompileJob]) -> List[CompilationResult]:
        """Execute every job in order; the first failure raises raw."""
        return [execute_job(job) for job in jobs]

    def run_isolated(self, jobs: Sequence[CompileJob]) -> List[JobOutcome]:
        """Execute every job, capturing library failures per job."""
        return [_outcome_from_payload(execute_job_payload(job))
                for job in jobs]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor:
    """Fan jobs out over a pool of worker processes.

    Compilation releases no GIL, so process-level parallelism is the only
    way to overlap policy x benchmark sweeps; a full Figure 9/10 sweep
    speeds up near-linearly in the worker count.  Results cross the
    process boundary via
    :meth:`~repro.core.result.CompilationResult.to_dict`, which is cheap
    when ``record_schedule=False`` (the default for sweeps).

    Worker processes import ``repro`` afresh, so benchmarks and policies
    registered at module import time are available in workers; with the
    ``spawn`` start method, registrations done only inside
    ``if __name__ == "__main__":`` are not.

    Args:
        jobs: Worker process count; defaults to the machine's CPU count.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"need at least one worker, got {jobs}")
        self.jobs = jobs or os.cpu_count() or 1

    def _map_outcomes(self, jobs: List[CompileJob]) -> List[JobOutcome]:
        """Run the batch through the pool, capturing per-job failures.

        Workers return tagged payloads rather than raising, so the
        failing job's identity survives the ``pool.map`` boundary.
        """
        if len(jobs) == 1 or self.jobs == 1:
            return [_outcome_from_payload(execute_job_payload(job))
                    for job in jobs]
        workers = min(self.jobs, len(jobs))
        with multiprocessing.Pool(processes=workers) as pool:
            payloads = pool.map(execute_job_payload, jobs)
        return [_outcome_from_payload(payload) for payload in payloads]

    def run(self, jobs: Sequence[CompileJob]) -> List[CompilationResult]:
        """Execute every job, preserving submission order in the results.

        The first failing job re-raises as its original library exception
        type with the job's benchmark/policy/machine attached to the
        message.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        outcomes = self._map_outcomes(jobs)
        _raise_first_failure(outcomes)
        return outcomes

    def run_isolated(self, jobs: Sequence[CompileJob]) -> List[JobOutcome]:
        """Execute every job, capturing library failures per job."""
        jobs = list(jobs)
        if not jobs:
            return []
        return self._map_outcomes(jobs)

    def __repr__(self) -> str:
        return f"ParallelExecutor(jobs={self.jobs})"
