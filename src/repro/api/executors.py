"""Job executors: serial and multiprocessing-parallel batch execution.

An executor turns an ordered list of :class:`~repro.api.job.CompileJob`
into the matching ordered list of
:class:`~repro.core.result.CompilationResult`.  Both executors call the
same :func:`~repro.api.job.execute_job`, so for a deterministic compiler
(and the SQUARE walk is deterministic) they produce identical results —
the parallel executor only changes wall-clock time, never numbers.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence

from repro.api.job import CompileJob, execute_job, execute_job_to_dict
from repro.core.result import CompilationResult


class SerialExecutor:
    """Run jobs one after another in the calling process."""

    def run(self, jobs: Sequence[CompileJob]) -> List[CompilationResult]:
        """Execute every job in order."""
        return [execute_job(job) for job in jobs]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor:
    """Fan jobs out over a pool of worker processes.

    Compilation releases no GIL, so process-level parallelism is the only
    way to overlap policy x benchmark sweeps; a full Figure 9/10 sweep
    speeds up near-linearly in the worker count.  Results cross the
    process boundary via
    :meth:`~repro.core.result.CompilationResult.to_dict`, which is cheap
    when ``record_schedule=False`` (the default for sweeps).

    Worker processes import ``repro`` afresh, so benchmarks and policies
    registered at module import time are available in workers; with the
    ``spawn`` start method, registrations done only inside
    ``if __name__ == "__main__":`` are not.

    Args:
        jobs: Worker process count; defaults to the machine's CPU count.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"need at least one worker, got {jobs}")
        self.jobs = jobs or os.cpu_count() or 1

    def run(self, jobs: Sequence[CompileJob]) -> List[CompilationResult]:
        """Execute every job, preserving submission order in the results."""
        jobs = list(jobs)
        if not jobs:
            return []
        if len(jobs) == 1 or self.jobs == 1:
            return [execute_job(job) for job in jobs]
        workers = min(self.jobs, len(jobs))
        with multiprocessing.Pool(processes=workers) as pool:
            payloads = pool.map(execute_job_to_dict, jobs)
        return [CompilationResult.from_dict(payload) for payload in payloads]

    def __repr__(self) -> str:
        return f"ParallelExecutor(jobs={self.jobs})"
