"""Cryptographic workloads: SHA-2 round function and the Salsa20 core.

SHA2 (Table II) is "multiple rounds of in-place modular additions and bit
rotations"; Salsa20 is "20 rounds of 4 parallel modules", each modifying
four words with additions, XORs and rotations.  Both are reproduced here
at configurable word width and round count: the default word width (8
bits) and round counts keep single compilations in the second range while
preserving the modular structure — per-round modules calling adder
sub-modules, ancilla registers for every intermediate word — that drives
the ancilla-reuse behaviour the paper evaluates.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.exceptions import IRError
from repro.ir.program import Program, QModule, Qubit
from repro.workloads.arithmetic import carry_chain_adder


def _xor_rotations(module: QModule, source: Sequence[Qubit],
                   target: Sequence[Qubit], rotations: Sequence[int]) -> None:
    """target ^= rot(source, r) for every r in rotations (bitwise CNOTs)."""
    width = len(source)
    for rotation in rotations:
        for j in range(width):
            module.cx(source[(j + rotation) % width], target[j])


def sha2_round(word_width: int = 8) -> QModule:
    """One SHA-256-style compression round at reduced word width.

    Parameters: the eight working words ``a..h`` as inputs and two outputs
    (the new ``a`` and new ``e`` words); the remaining words of the next
    state are obtained by relabelling in the caller, exactly as in the
    SHA-2 round permutation.
    """
    if word_width < 2:
        raise IRError("word width must be at least 2")
    w = word_width
    module = QModule(f"sha2_round_{w}", num_inputs=8 * w, num_outputs=2 * w,
                     num_ancilla=6 * w + 4 * (w + 1))
    words = [module.inputs[i * w:(i + 1) * w] for i in range(8)]
    a, b, c, d, e, f, g, h = words
    new_a = module.outputs[:w]
    new_e = module.outputs[w:]

    ancillas = list(module.ancillas)

    def take(count: int) -> List[Qubit]:
        nonlocal ancillas
        chunk, ancillas = ancillas[:count], ancillas[count:]
        return chunk

    ch = take(w)          # ch(e, f, g)
    maj = take(w)         # maj(a, b, c)
    sigma0 = take(w)      # big-sigma0(a)
    sigma1 = take(w)      # big-sigma1(e)
    t1 = take(w + 1)      # h + sigma1 + ch   (carry-out bit included)
    t2 = take(w + 1)      # sigma0 + maj
    sum_he = take(w)      # h + sigma1 partial operand register
    sum_am = take(w)      # sigma0 operand copy for t2

    adder = carry_chain_adder(w, controlled=False, name=f"adder{w}_sha2")

    module.begin_compute()
    # ch(e, f, g) = (e & f) ^ (~e & g)
    for j in range(w):
        module.ccx(e[j], f[j], ch[j])
        module.x(e[j])
        module.ccx(e[j], g[j], ch[j])
        module.x(e[j])
    # maj(a, b, c)
    for j in range(w):
        module.ccx(a[j], b[j], maj[j])
        module.ccx(a[j], c[j], maj[j])
        module.ccx(b[j], c[j], maj[j])
    # big-sigma0(a) and big-sigma1(e) (rotation amounts reduced mod width).
    _xor_rotations(module, a, sigma0, (2, 13, 22))
    _xor_rotations(module, e, sigma1, (6, 11, 25))
    # sum_he = h ^ sigma1 folded operand, sum_am = sigma0 ^ maj operand.
    for j in range(w):
        module.cx(h[j], sum_he[j])
        module.cx(sigma1[j], sum_he[j])
        module.cx(sigma0[j], sum_am[j])
    # t1 = sum_he + ch ;  t2 = sum_am + maj.
    module.call(adder, *(list(sum_he) + list(ch) + list(t1)))
    module.call(adder, *(list(sum_am) + list(maj) + list(t2)))

    # Store: new_a = t1 ^ t2 (folded addition), new_e = d ^ t1.
    module.begin_store()
    for j in range(w):
        module.cx(t1[j], new_a[j])
        module.cx(t2[j], new_a[j])
        module.cx(d[j], new_e[j])
        module.cx(t1[j], new_e[j])
    return module


def sha2_program(word_width: int = 8, rounds: int = 4,
                 name: str | None = None) -> Program:
    """SHA2: ``rounds`` compression rounds chained by the state permutation."""
    if rounds < 1:
        raise IRError("rounds must be at least 1")
    w = word_width
    round_module = sha2_round(w)
    entry = QModule(
        "sha2_main",
        num_inputs=8 * w,
        num_outputs=2 * w,
        num_ancilla=2 * w * rounds,
    )
    state = [list(entry.inputs[i * w:(i + 1) * w]) for i in range(8)]
    ancillas = list(entry.ancillas)
    fresh = [ancillas[i * w:(i + 1) * w] for i in range(2 * rounds)]

    entry.begin_compute()
    for r in range(rounds):
        new_a = fresh[2 * r]
        new_e = fresh[2 * r + 1]
        args: List[Qubit] = []
        for word in state:
            args.extend(word)
        args.extend(new_a)
        args.extend(new_e)
        entry.call(round_module, *args)
        a, b, c, d, e, f, g, h = state
        # SHA-2 state rotation: (a,b,c,d,e,f,g,h) <- (T, a, b, c, T', e, f, g)
        state = [list(new_a), a, b, c, list(new_e), e, f, g]

    entry.begin_store()
    final_a, final_e = state[0], state[4]
    for j in range(w):
        entry.cx(final_a[j], entry.outputs[j])
        entry.cx(final_e[j], entry.outputs[w + j])
    return Program(entry, name=name or "SHA2")


def salsa20_quarter_round(word_width: int = 8) -> QModule:
    """The Salsa20 quarter-round on four words (reduced width).

    ``b ^= rotl(a + d, 7); c ^= rotl(b + a, 9); d ^= rotl(c + b, 13);
    a ^= rotl(d + c, 18)`` — here each ``x + y`` is an out-of-place adder
    into an ancilla word and the rotated XOR lands on an output word.
    """
    if word_width < 2:
        raise IRError("word width must be at least 2")
    w = word_width
    module = QModule(f"salsa_qr_{w}", num_inputs=4 * w, num_outputs=4 * w,
                     num_ancilla=4 * (w + 1))
    a = module.inputs[0 * w:1 * w]
    b = module.inputs[1 * w:2 * w]
    c = module.inputs[2 * w:3 * w]
    d = module.inputs[3 * w:4 * w]
    out = [module.outputs[i * w:(i + 1) * w] for i in range(4)]
    ancillas = list(module.ancillas)
    sums = [ancillas[i * (w + 1):(i + 1) * (w + 1)] for i in range(4)]
    rotations = (7, 9, 13, 18)

    adder = carry_chain_adder(w, controlled=False, name=f"adder{w}_salsa")

    module.begin_compute()
    module.call(adder, *(list(a) + list(d) + sums[0]))
    module.call(adder, *(list(b) + list(a) + sums[1]))
    module.call(adder, *(list(c) + list(b) + sums[2]))
    module.call(adder, *(list(d) + list(c) + sums[3]))

    module.begin_store()
    sources = (b, c, d, a)
    for index, (source, rotation) in enumerate(zip(sources, rotations)):
        target = out[index]
        # out_i = source_i ^ rotl(sum_i, rotation)
        for j in range(w):
            module.cx(source[j], target[j])
            module.cx(sums[index][(j + rotation) % w], target[j])
    return module


def salsa20_program(word_width: int = 8, rounds: int = 4,
                    name: str | None = None) -> Program:
    """SALSA20: ``rounds`` rounds of four parallel quarter-round modules.

    The sixteen-word state is processed column-wise; the four quarter-round
    calls in each round touch disjoint words and can therefore execute in
    parallel, which is exactly the parallelism the paper's Salsa20
    benchmark exposes.
    """
    if rounds < 1:
        raise IRError("rounds must be at least 1")
    w = word_width
    quarter = salsa20_quarter_round(w)
    entry = QModule(
        "salsa20_main",
        num_inputs=16 * w,
        num_outputs=4 * w,
        num_ancilla=16 * w * rounds,
    )
    state = [list(entry.inputs[i * w:(i + 1) * w]) for i in range(16)]
    ancillas = list(entry.ancillas)
    cursor = 0

    def fresh_word() -> List[Qubit]:
        nonlocal cursor
        word = ancillas[cursor:cursor + w]
        cursor += w
        return word

    # Salsa20 column groups (indices into the 4x4 state).
    columns = [(0, 4, 8, 12), (5, 9, 13, 1), (10, 14, 2, 6), (15, 3, 7, 11)]

    entry.begin_compute()
    for _ in range(rounds):
        next_state = [list(word) for word in state]
        for group in columns:
            outputs = [fresh_word() for _ in range(4)]
            args: List[Qubit] = []
            for index in group:
                args.extend(state[index])
            for word in outputs:
                args.extend(word)
            entry.call(quarter, *args)
            for slot, word in zip(group, outputs):
                next_state[slot] = word
        state = next_state

    entry.begin_store()
    for j in range(w):
        entry.cx(state[0][j], entry.outputs[j])
        entry.cx(state[5][j], entry.outputs[w + j])
        entry.cx(state[10][j], entry.outputs[2 * w + j])
        entry.cx(state[15][j], entry.outputs[3 * w + j])
    return Program(entry, name=name or "SALSA20")
