"""Reversible ripple-carry adders (ADDER4 / ADDER32 / ADDER64).

The adders follow the carry-ripple structure of Vedral-Barenco-Ekert /
Cuccaro adders ([63] in the paper) recast into the Compute-Store-Uncompute
pattern: the Compute block ripples the carries into an ancilla register,
the Store block writes the sum bits onto the output register (optionally
under a control qubit, giving the "controlled-addition" of Table II), and
the Uncompute block un-ripples the carries so the ancillas can be
reclaimed.

Note on the substitution: the paper's ADDERs are in-place; the in-place
Cuccaro structure interleaves computation and uncomputation and therefore
exposes no reclamation decision at all.  The out-of-place variant keeps
the identical carry-chain gate structure and ancilla pressure while fitting
the modular Compute-Store-Uncompute form the compiler optimises, which is
what the evaluation exercises.
"""

from __future__ import annotations

from repro.exceptions import IRError
from repro.ir.program import Program, QModule


def carry_chain_adder(width: int, controlled: bool = False,
                      name: str | None = None) -> QModule:
    """Build a ``width``-bit out-of-place (optionally controlled) adder.

    Parameters of the returned module, in order:

    * ``ctrl`` (only when ``controlled``) — addition happens when set;
    * ``a[width]`` — first addend (unchanged);
    * ``b[width]`` — second addend (unchanged);
    * outputs ``sum[width + 1]`` — receives ``a + b`` (with carry-out).

    The module allocates ``width`` carry ancillas.
    """
    if width < 1:
        raise IRError("adder width must be at least 1")
    num_inputs = (1 if controlled else 0) + 2 * width
    module = QModule(
        name or (f"ctrl_adder{width}" if controlled else f"adder{width}"),
        num_inputs=num_inputs,
        num_outputs=width + 1,
        num_ancilla=width,
    )
    cursor = 0
    ctrl = None
    if controlled:
        ctrl = module.inputs[0]
        cursor = 1
    a = module.inputs[cursor:cursor + width]
    b = module.inputs[cursor + width:cursor + 2 * width]
    out = module.outputs
    carry = module.ancillas

    # Compute: ripple the carries.  carry[i+1] = maj(a[i], b[i], carry[i]);
    # as in the VBE adder, b[i] temporarily becomes a[i] ^ b[i].
    module.begin_compute()
    for i in range(width):
        # carry[i] accumulates the carry *out of* bit i.
        module.ccx(a[i], b[i], carry[i])
        module.cx(a[i], b[i])
        if i > 0:
            module.ccx(carry[i - 1], b[i], carry[i])

    # Store: sum[i] = a[i] ^ b[i] ^ carry[i-1]; at this point b[i] holds
    # a[i] ^ b[i], so two CNOTs (or Toffolis when controlled) suffice.
    module.begin_store()
    for i in range(width):
        if controlled:
            module.ccx(ctrl, b[i], out[i])
            if i > 0:
                module.ccx(ctrl, carry[i - 1], out[i])
        else:
            module.cx(b[i], out[i])
            if i > 0:
                module.cx(carry[i - 1], out[i])
    if controlled:
        module.ccx(ctrl, carry[width - 1], out[width])
    else:
        module.cx(carry[width - 1], out[width])

    # Uncompute is generated automatically as the inverse of Compute.
    return module


def adder_program(width: int, controlled: bool = True,
                  name: str | None = None) -> Program:
    """A whole-program wrapper: one top-level (controlled) addition.

    The entry module allocates nothing itself; it simply calls the adder,
    so the single reclamation decision sits one level below the top —
    exactly the Figure 3 situation.
    """
    adder = carry_chain_adder(width, controlled=controlled)
    num_inputs = (1 if controlled else 0) + 2 * width
    entry = QModule(
        name or f"adder{width}_main",
        num_inputs=num_inputs,
        num_outputs=width + 1,
        num_ancilla=0,
    )
    entry.begin_compute()
    entry.call(adder, *(entry.inputs + entry.outputs))
    return Program(entry, name=name or (f"ADDER{width}" if controlled else f"ADD{width}"))


def adder4(**kwargs) -> Program:
    """ADDER4: 4-bit controlled addition (Table II)."""
    return adder_program(4, controlled=True, name="ADDER4", **kwargs)


def adder32() -> Program:
    """ADDER32: 32-bit controlled addition (Table II)."""
    return adder_program(32, controlled=True, name="ADDER32")


def adder64() -> Program:
    """ADDER64: 64-bit controlled addition (Table II)."""
    return adder_program(64, controlled=True, name="ADDER64")
