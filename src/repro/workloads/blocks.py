"""Small reusable reversible building blocks.

These leaf modules (full adder, half adder, majority, fan-out copy) have
no ancilla of their own; they write their results onto parameter qubits
supplied by the caller, which keeps the ancilla-management decisions in
the calling (higher-level) modules where SQUARE makes them.
"""

from __future__ import annotations

from functools import lru_cache

from repro.ir.program import QModule


@lru_cache(maxsize=None)
def full_adder() -> QModule:
    """Out-of-place full adder.

    Parameters: inputs ``a, b, cin``; outputs ``sum_out, carry_out``.
    ``sum_out ^= a ^ b ^ cin`` and ``carry_out ^= maj(a, b, cin)``; the
    inputs are left untouched.
    """
    module = QModule("full_adder", num_inputs=3, num_outputs=2)
    a, b, cin = module.inputs
    sum_out, carry_out = module.outputs
    module.begin_compute()
    module.ccx(a, b, carry_out)
    module.ccx(a, cin, carry_out)
    module.ccx(b, cin, carry_out)
    module.begin_store()
    module.cx(a, sum_out)
    module.cx(b, sum_out)
    module.cx(cin, sum_out)
    return module


@lru_cache(maxsize=None)
def half_adder() -> QModule:
    """Out-of-place half adder.

    Parameters: inputs ``a, b``; outputs ``sum_out, carry_out``.
    """
    module = QModule("half_adder", num_inputs=2, num_outputs=2)
    a, b = module.inputs
    sum_out, carry_out = module.outputs
    module.begin_compute()
    module.ccx(a, b, carry_out)
    module.begin_store()
    module.cx(a, sum_out)
    module.cx(b, sum_out)
    return module


@lru_cache(maxsize=None)
def majority_gate() -> QModule:
    """Write the majority of three inputs onto an output qubit."""
    module = QModule("majority", num_inputs=3, num_outputs=1)
    a, b, c = module.inputs
    out = module.outputs[0]
    module.begin_compute()
    module.ccx(a, b, out)
    module.ccx(a, c, out)
    module.ccx(b, c, out)
    return module


@lru_cache(maxsize=None)
def xor_copy(width: int) -> QModule:
    """XOR-copy a ``width``-bit register onto another (fan-out)."""
    module = QModule(f"xor_copy_{width}", num_inputs=width, num_outputs=width)
    module.begin_compute()
    for source, target in zip(module.inputs, module.outputs):
        module.cx(source, target)
    return module


@lru_cache(maxsize=None)
def bitwise_and(width: int) -> QModule:
    """Bitwise AND of two registers written onto an output register."""
    module = QModule(f"and_{width}", num_inputs=2 * width, num_outputs=width)
    a = module.inputs[:width]
    b = module.inputs[width:]
    module.begin_compute()
    for bit_a, bit_b, out in zip(a, b, module.outputs):
        module.ccx(bit_a, bit_b, out)
    return module


@lru_cache(maxsize=None)
def bitwise_xor(width: int) -> QModule:
    """Bitwise XOR of two registers written onto an output register."""
    module = QModule(f"xor_{width}", num_inputs=2 * width, num_outputs=width)
    a = module.inputs[:width]
    b = module.inputs[width:]
    module.begin_compute()
    for bit_a, bit_b, out in zip(a, b, module.outputs):
        module.cx(bit_a, out)
        module.cx(bit_b, out)
    return module
