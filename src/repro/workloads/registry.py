"""Benchmark registry: every workload of Table II by name.

The registry maps benchmark names to factories producing
:class:`~repro.ir.program.Program` objects, with optional keyword
overrides (register widths, round counts) for scaling experiments up or
down.  Lookup is case-insensitive but every name has one canonical
capitalisation, used consistently in listings, reports and error
messages.  ``NISQ_BENCHMARKS`` and ``LARGE_BENCHMARKS`` reproduce the two
benchmark groups used in Sections V-C and V-D/V-E respectively.

New workloads plug in through :func:`register_benchmark`::

    from repro.workloads.registry import register_benchmark

    @register_benchmark("QFT8")
    def qft8_program(width=8):
        ...build and return a Program...

after which ``"QFT8"`` (any capitalisation) works everywhere a built-in
benchmark name does — ``load_benchmark``, sweep specs, the CLI.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from repro.exceptions import ExperimentError
from repro.ir.program import Program
from repro.workloads.arithmetic import adder4, adder32, adder64, adder_program
from repro.workloads.crypto import salsa20_program, sha2_program
from repro.workloads.modexp import modexp_program
from repro.workloads.multiplier import multiplier_program
from repro.workloads.oracles import rd53, sym6, two_of_five
from repro.workloads.synthetic import synthetic_program

#: Small benchmarks used for the NISQ experiments (Table III, Figure 8).
NISQ_BENCHMARKS: List[str] = [
    "RD53", "6SYM", "2OF5", "ADDER4", "jasmine-s", "elsa-s", "belle-s",
]

#: Medium/large benchmarks used for the NISQ-FT boundary (Figure 9) and FT
#: (Figure 10) experiments.
LARGE_BENCHMARKS: List[str] = [
    "ADDER32", "ADDER64", "MUL32", "MUL64", "MODEXP", "SHA2", "SALSA20",
    "Jasmine", "Elsa", "Belle",
]

#: Factories keyed by lowercase name.
_FACTORIES: Dict[str, Callable[..., Program]] = {}

#: Canonical capitalisation keyed by lowercase name, so listings and
#: error messages always agree with ``NISQ_BENCHMARKS``/``LARGE_BENCHMARKS``.
_CANONICAL: Dict[str, str] = {}


def register_benchmark(name: str,
                       factory: Optional[Callable[..., Program]] = None,
                       *, replace: bool = False):
    """Register a benchmark factory under canonical name ``name``.

    Usable as a decorator (``@register_benchmark("QFT8")``) or as a direct
    call (``register_benchmark("QFT8", build_qft8)``).  The factory may
    accept keyword overrides (e.g. ``width=16``), which
    :func:`load_benchmark` forwards.

    Raises:
        ExperimentError: If the name is already registered and ``replace``
            is False.
    """
    key = name.lower()

    def register(f: Callable[..., Program]) -> Callable[..., Program]:
        if not replace and key in _FACTORIES:
            raise ExperimentError(
                f"benchmark {_CANONICAL[key]!r} is already registered; "
                f"pass replace=True to override"
            )
        _FACTORIES[key] = f
        _CANONICAL[key] = name
        return f

    if factory is not None:
        return register(factory)
    return register


def canonical_benchmark_name(name: str) -> str:
    """The canonical capitalisation of a (case-insensitive) benchmark name.

    Raises:
        ExperimentError: If the name is unknown, listing the known
            canonical names.
    """
    try:
        return _CANONICAL[name.lower()]
    except KeyError:
        raise ExperimentError(
            f"unknown benchmark {name!r}; known: {benchmark_names()}"
        ) from None


def benchmark_names() -> List[str]:
    """Every registered benchmark name (canonical capitalisation)."""
    return list(_CANONICAL.values())


def load_benchmark(name: str, **overrides) -> Program:
    """Build the named benchmark program.

    Args:
        name: Benchmark name (case insensitive), e.g. ``"ADDER4"``.
        overrides: Optional size overrides forwarded to the factory
            (e.g. ``width=16`` for the multipliers, ``rounds=2`` for SHA2).

    Raises:
        ExperimentError: If the name is unknown or the overrides do not
            apply to that benchmark.
    """
    canonical = canonical_benchmark_name(name)
    factory = _FACTORIES[canonical.lower()]
    try:
        return factory(**overrides)
    except TypeError as error:
        raise ExperimentError(
            f"benchmark {canonical!r} does not accept overrides {overrides}: "
            f"{error}"
        ) from None


# ----------------------------------------------------------------------
# Built-in benchmarks (Table II), registered in presentation order.
# ----------------------------------------------------------------------
register_benchmark("RD53", lambda: rd53())
register_benchmark("6SYM", lambda: sym6())
register_benchmark("2OF5", lambda: two_of_five())
register_benchmark("ADDER4", lambda: adder4())
register_benchmark("jasmine-s", lambda: synthetic_program("jasmine-s"))
register_benchmark("elsa-s", lambda: synthetic_program("elsa-s"))
register_benchmark("belle-s", lambda: synthetic_program("belle-s"))
register_benchmark(
    "ADDER32",
    lambda width=32: adder_program(width, controlled=True, name="ADDER32"))
register_benchmark(
    "ADDER64",
    lambda width=64: adder_program(width, controlled=True, name="ADDER64"))
register_benchmark(
    "MUL32",
    lambda width=32: multiplier_program(width, controlled=True, name="MUL32"))
register_benchmark(
    "MUL64",
    lambda width=64: multiplier_program(width, controlled=True, name="MUL64"))
register_benchmark(
    "MODEXP",
    lambda width=4, exponent_bits=4: modexp_program(
        width=width, exponent_bits=exponent_bits))
register_benchmark(
    "SHA2",
    lambda word_width=8, rounds=4: sha2_program(
        word_width=word_width, rounds=rounds))
register_benchmark(
    "SALSA20",
    lambda word_width=8, rounds=4: salsa20_program(
        word_width=word_width, rounds=rounds))
register_benchmark("Jasmine", lambda: synthetic_program("jasmine"))
register_benchmark("Elsa", lambda: synthetic_program("elsa"))
register_benchmark("Belle", lambda: synthetic_program("belle"))


# ----------------------------------------------------------------------
# Benchmark scales
# ----------------------------------------------------------------------

#: Benchmark size scales accepted throughout the experiment layer.
SCALES = ("quick", "laptop", "paper")

#: Benchmark size overrides used for laptop-scale runs of the large
#: benchmarks (Figures 9 and 10).  The paper compiles the full-width
#: versions on a workstation; the reduced widths preserve the modular
#: structure and the relative policy behaviour while keeping a full sweep
#: in the minutes range.  Pass ``scale="paper"`` to use full widths.
LAPTOP_SCALE_OVERRIDES: Mapping[str, Dict[str, int]] = {
    "MUL32": {"width": 12},
    "MUL64": {"width": 16},
    "MODEXP": {"width": 4, "exponent_bits": 4},
    "SHA2": {"word_width": 8, "rounds": 4},
    "SALSA20": {"word_width": 8, "rounds": 2},
}

QUICK_SCALE_OVERRIDES: Mapping[str, Dict[str, int]] = {
    "ADDER32": {"width": 16},
    "ADDER64": {"width": 24},
    "MUL32": {"width": 6},
    "MUL64": {"width": 8},
    "MODEXP": {"width": 3, "exponent_bits": 3},
    "SHA2": {"word_width": 4, "rounds": 2},
    "SALSA20": {"word_width": 4, "rounds": 1},
}


def benchmark_overrides(name: str, scale: str = "laptop") -> Dict[str, int]:
    """Size overrides for a large benchmark under the given scale."""
    key = _CANONICAL.get(name.lower(), name)
    if scale == "paper":
        return {}
    if scale == "quick":
        return dict(QUICK_SCALE_OVERRIDES.get(key, {}))
    if scale == "laptop":
        return dict(LAPTOP_SCALE_OVERRIDES.get(key, {}))
    raise ExperimentError(f"unknown scale {scale!r}; use quick, laptop or paper")


def load_scaled_benchmark(name: str, scale: str = "laptop") -> Program:
    """Load a benchmark at the requested scale."""
    return load_benchmark(name, **benchmark_overrides(name, scale))
