"""Benchmark registry: every workload of Table II by name.

The registry maps benchmark names to zero-argument factories producing
:class:`~repro.ir.program.Program` objects, with optional keyword
overrides (register widths, round counts) for scaling experiments up or
down.  ``NISQ_BENCHMARKS`` and ``LARGE_BENCHMARKS`` reproduce the two
benchmark groups used in Sections V-C and V-D/V-E respectively.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.exceptions import ExperimentError
from repro.ir.program import Program
from repro.workloads.arithmetic import adder4, adder32, adder64, adder_program
from repro.workloads.crypto import salsa20_program, sha2_program
from repro.workloads.modexp import modexp_program
from repro.workloads.multiplier import multiplier_program
from repro.workloads.oracles import rd53, sym6, two_of_five
from repro.workloads.synthetic import synthetic_program

#: Small benchmarks used for the NISQ experiments (Table III, Figure 8).
NISQ_BENCHMARKS: List[str] = [
    "RD53", "6SYM", "2OF5", "ADDER4", "jasmine-s", "elsa-s", "belle-s",
]

#: Medium/large benchmarks used for the NISQ-FT boundary (Figure 9) and FT
#: (Figure 10) experiments.
LARGE_BENCHMARKS: List[str] = [
    "ADDER32", "ADDER64", "MUL32", "MUL64", "MODEXP", "SHA2", "SALSA20",
    "Jasmine", "Elsa", "Belle",
]

_FACTORIES: Dict[str, Callable[..., Program]] = {
    "rd53": lambda: rd53(),
    "6sym": lambda: sym6(),
    "2of5": lambda: two_of_five(),
    "adder4": lambda: adder4(),
    "adder32": lambda width=32: adder_program(width, controlled=True, name="ADDER32"),
    "adder64": lambda width=64: adder_program(width, controlled=True, name="ADDER64"),
    "mul32": lambda width=32: multiplier_program(width, controlled=True, name="MUL32"),
    "mul64": lambda width=64: multiplier_program(width, controlled=True, name="MUL64"),
    "modexp": lambda width=4, exponent_bits=4: modexp_program(
        width=width, exponent_bits=exponent_bits),
    "sha2": lambda word_width=8, rounds=4: sha2_program(
        word_width=word_width, rounds=rounds),
    "salsa20": lambda word_width=8, rounds=4: salsa20_program(
        word_width=word_width, rounds=rounds),
    "jasmine-s": lambda: synthetic_program("jasmine-s"),
    "elsa-s": lambda: synthetic_program("elsa-s"),
    "belle-s": lambda: synthetic_program("belle-s"),
    "jasmine": lambda: synthetic_program("jasmine"),
    "elsa": lambda: synthetic_program("elsa"),
    "belle": lambda: synthetic_program("belle"),
}


def benchmark_names() -> List[str]:
    """Every registered benchmark name (canonical capitalisation)."""
    return NISQ_BENCHMARKS + LARGE_BENCHMARKS


def load_benchmark(name: str, **overrides) -> Program:
    """Build the named benchmark program.

    Args:
        name: Benchmark name (case insensitive), e.g. ``"ADDER4"``.
        overrides: Optional size overrides forwarded to the factory
            (e.g. ``width=16`` for the multipliers, ``rounds=2`` for SHA2).

    Raises:
        ExperimentError: If the name is unknown or the overrides do not
            apply to that benchmark.
    """
    key = name.lower()
    if key not in _FACTORIES:
        raise ExperimentError(
            f"unknown benchmark {name!r}; known: {sorted(_FACTORIES)}"
        )
    factory = _FACTORIES[key]
    try:
        return factory(**overrides)
    except TypeError as error:
        raise ExperimentError(
            f"benchmark {name!r} does not accept overrides {overrides}: {error}"
        ) from None
