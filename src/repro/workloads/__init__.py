"""Benchmark workload library (Table II of the paper)."""

from repro.workloads.arithmetic import (
    adder4,
    adder32,
    adder64,
    adder_program,
    carry_chain_adder,
)
from repro.workloads.blocks import (
    bitwise_and,
    bitwise_xor,
    full_adder,
    half_adder,
    majority_gate,
    xor_copy,
)
from repro.workloads.crypto import (
    salsa20_program,
    salsa20_quarter_round,
    sha2_program,
    sha2_round,
)
from repro.workloads.modexp import controlled_modmul_step, modexp, modexp_program
from repro.workloads.multiplier import (
    mul32,
    mul64,
    multiplier_program,
    shift_add_multiplier,
)
from repro.workloads.oracles import popcount5, popcount6, rd53, sym6, two_of_five
from repro.workloads.registry import (
    LARGE_BENCHMARKS,
    NISQ_BENCHMARKS,
    benchmark_names,
    load_benchmark,
)
from repro.workloads.synthetic import (
    SYNTHETIC_SPECS,
    SyntheticGenerator,
    SyntheticSpec,
    belle,
    belle_small,
    elsa,
    elsa_small,
    jasmine,
    jasmine_small,
    synthetic_program,
)

__all__ = [
    "LARGE_BENCHMARKS",
    "NISQ_BENCHMARKS",
    "SYNTHETIC_SPECS",
    "SyntheticGenerator",
    "SyntheticSpec",
    "adder32",
    "adder4",
    "adder64",
    "adder_program",
    "belle",
    "belle_small",
    "benchmark_names",
    "bitwise_and",
    "bitwise_xor",
    "carry_chain_adder",
    "controlled_modmul_step",
    "elsa",
    "elsa_small",
    "full_adder",
    "half_adder",
    "jasmine",
    "jasmine_small",
    "load_benchmark",
    "majority_gate",
    "modexp",
    "modexp_program",
    "mul32",
    "mul64",
    "multiplier_program",
    "popcount5",
    "popcount6",
    "rd53",
    "salsa20_program",
    "salsa20_quarter_round",
    "sha2_program",
    "sha2_round",
    "shift_add_multiplier",
    "sym6",
    "synthetic_program",
    "two_of_five",
    "xor_copy",
]
