"""Out-of-place controlled multipliers (MUL32 / MUL64, Table II).

The multiplier is a shift-and-add structure: each partial product
``a_i * (b << i)`` is written into an ancilla register with Toffoli gates
and accumulated with the carry-chain adder of
:mod:`repro.workloads.arithmetic`.  All intermediate registers (partial
products, running accumulators, adder carries) are ancilla, giving the
multi-level call structure — multiplier → adder — whose reclamation
decisions the paper's Figures 9 and 10 evaluate.
"""

from __future__ import annotations

from repro.exceptions import IRError
from repro.ir.program import Program, QModule
from repro.workloads.arithmetic import carry_chain_adder


def shift_add_multiplier(width: int, controlled: bool = True,
                         name: str | None = None) -> QModule:
    """Build a ``width x width -> 2*width``-bit out-of-place multiplier.

    Parameters of the returned module, in order:

    * ``ctrl`` (only when ``controlled``) — product is produced when set;
    * ``a[width]``, ``b[width]`` — the factors (unchanged);
    * outputs ``p[2*width]`` — receives ``a * b`` (or 0 when control clear).

    Ancillas: one ``2*width``-bit register per partial product and one
    ``2*width + 1``-bit running accumulator per addition step, plus the
    carry ancillas allocated inside each adder call.
    """
    if width < 2:
        raise IRError("multiplier width must be at least 2")
    product_width = 2 * width
    num_inputs = (1 if controlled else 0) + 2 * width
    # Ancilla layout: width partial-product registers of product_width bits,
    # then (width - 1) accumulator registers of (product_width + 1) bits.
    num_ancilla = width * product_width + (width - 1) * (product_width + 1)
    module = QModule(
        name or (f"ctrl_mul{width}" if controlled else f"mul{width}"),
        num_inputs=num_inputs,
        num_outputs=product_width,
        num_ancilla=num_ancilla,
    )
    cursor = 0
    ctrl = None
    if controlled:
        ctrl = module.inputs[0]
        cursor = 1
    a = module.inputs[cursor:cursor + width]
    b = module.inputs[cursor + width:cursor + 2 * width]
    outputs = module.outputs

    ancillas = list(module.ancillas)
    partial = [ancillas[i * product_width:(i + 1) * product_width]
               for i in range(width)]
    offset = width * product_width
    acc_width = product_width + 1
    accumulators = [
        ancillas[offset + i * acc_width: offset + (i + 1) * acc_width]
        for i in range(width - 1)
    ]

    adder = carry_chain_adder(product_width, controlled=False,
                              name=f"adder{product_width}_mul")

    # Compute: partial products, then ripple-accumulate them.
    module.begin_compute()
    for i in range(width):
        for j in range(width):
            module.ccx(a[i], b[j], partial[i][i + j])
    running = partial[0]
    for i in range(1, width):
        target = accumulators[i - 1]
        module.call(adder, *(running + partial[i] + target))
        running = target[:product_width]

    # Store: copy (optionally controlled) the final accumulator to the output.
    module.begin_store()
    for j in range(product_width):
        if controlled:
            module.ccx(ctrl, running[j], outputs[j])
        else:
            module.cx(running[j], outputs[j])
    return module


def multiplier_program(width: int, controlled: bool = True,
                       name: str | None = None) -> Program:
    """Wrap a multiplier as a whole program with a thin entry module."""
    mul = shift_add_multiplier(width, controlled=controlled)
    num_inputs = (1 if controlled else 0) + 2 * width
    entry = QModule(
        f"mul{width}_main",
        num_inputs=num_inputs,
        num_outputs=2 * width,
        num_ancilla=0,
    )
    entry.begin_compute()
    entry.call(mul, *(entry.inputs + entry.outputs))
    return Program(entry, name=name or f"MUL{width}")


def mul32(width: int = 32) -> Program:
    """MUL32: 32-bit out-of-place controlled multiplier (Table II)."""
    return multiplier_program(width, controlled=True, name="MUL32")


def mul64(width: int = 64) -> Program:
    """MUL64: 64-bit out-of-place controlled multiplier (Table II)."""
    return multiplier_program(width, controlled=True, name="MUL64")
