"""Parameterised synthetic benchmarks (Jasmine, Elsa, Belle and -s variants).

Section V-A of the paper constructs random synthetic circuits whose
program call graphs are controlled by five parameters: number of nested
levels, maximum callees per function, maximum input qubits per function,
maximum ancilla qubits per function and maximum gates per function.  The
three named instances differ in shape:

* **Jasmine** — shallowly nested, balanced workload;
* **Elsa**    — heavy per-function workload, shallowly nested;
* **Belle**   — light per-function workload, deeply nested.

The ``-s`` variants are small/shallow versions that fit the sub-20-qubit
NISQ machines of Table III and Figure 8.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import IRError
from repro.ir.program import Program, QModule, Qubit


@dataclass(frozen=True)
class SyntheticSpec:
    """Shape parameters of a synthetic benchmark (Section V-A).

    Attributes:
        name: Benchmark name used in reports.
        levels: Number of nested levels in the call graph.
        max_callees: Maximum child calls per function.
        max_inputs: Maximum input (parameter) qubits per function.
        max_ancilla: Maximum ancilla qubits per function.
        max_gates: Maximum gates per function body.
        seed: RNG seed so each named benchmark is reproducible.
    """

    name: str
    levels: int
    max_callees: int
    max_inputs: int
    max_ancilla: int
    max_gates: int
    seed: int = 1

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise IRError("levels must be at least 1")
        if self.max_inputs < 2:
            raise IRError("max_inputs must be at least 2")
        if self.max_ancilla < 1:
            raise IRError("max_ancilla must be at least 1")
        if self.max_gates < 1:
            raise IRError("max_gates must be at least 1")


#: The six named synthetic benchmarks of Table II.
SYNTHETIC_SPECS = {
    "jasmine-s": SyntheticSpec("jasmine-s", levels=3, max_callees=2,
                               max_inputs=4, max_ancilla=2, max_gates=8, seed=11),
    "elsa-s": SyntheticSpec("elsa-s", levels=2, max_callees=2,
                            max_inputs=5, max_ancilla=3, max_gates=14, seed=12),
    "belle-s": SyntheticSpec("belle-s", levels=4, max_callees=1,
                             max_inputs=3, max_ancilla=2, max_gates=5, seed=13),
    "jasmine": SyntheticSpec("jasmine", levels=3, max_callees=3,
                             max_inputs=12, max_ancilla=8, max_gates=40, seed=21),
    "elsa": SyntheticSpec("elsa", levels=2, max_callees=4,
                          max_inputs=16, max_ancilla=12, max_gates=120, seed=22),
    "belle": SyntheticSpec("belle", levels=7, max_callees=2,
                           max_inputs=8, max_ancilla=4, max_gates=12, seed=23),
}


class SyntheticGenerator:
    """Generates a random modular reversible program from a spec."""

    def __init__(self, spec: SyntheticSpec) -> None:
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._counter = 0

    # ------------------------------------------------------------------
    def generate(self) -> Program:
        """Build the program: one random module tree rooted at the entry."""
        entry = self._build_module(level=0)
        return Program(entry, name=self.spec.name)

    # ------------------------------------------------------------------
    def _build_module(self, level: int, max_inputs: Optional[int] = None) -> QModule:
        spec = self.spec
        rng = self._rng
        self._counter += 1
        input_cap = min(spec.max_inputs, max_inputs) if max_inputs else spec.max_inputs
        num_inputs = rng.randint(2, max(2, input_cap))
        num_ancilla = rng.randint(1, spec.max_ancilla)
        module = QModule(
            f"{spec.name}_f{self._counter}_l{level}",
            num_inputs=num_inputs,
            num_outputs=1,
            num_ancilla=num_ancilla,
        )
        locals_pool: List[Qubit] = list(module.inputs) + list(module.ancillas)

        # Children are generated with a parameter count that fits this
        # module's local pool, so deep nesting never degenerates.
        children: List[QModule] = []
        if level + 1 < spec.levels and len(locals_pool) >= 3:
            num_children = rng.randint(1, spec.max_callees)
            for _ in range(num_children):
                child = self._build_module(level + 1,
                                           max_inputs=len(locals_pool) - 1)
                if child.num_params <= len(locals_pool):
                    children.append(child)

        module.begin_compute()
        num_gates = rng.randint(max(1, spec.max_gates // 2), spec.max_gates)
        call_positions = set()
        if children:
            call_positions = set(
                rng.sample(range(num_gates), k=min(len(children), num_gates))
            )
        child_iter = iter(children)
        for position in range(num_gates):
            if position in call_positions:
                child = next(child_iter)
                args = rng.sample(locals_pool, k=child.num_params)
                module.call(child, *args)
            else:
                self._random_gate(module, locals_pool)

        # Store: fold one or two ancilla results onto the output qubit.
        module.begin_store()
        sources = rng.sample(list(module.ancillas),
                             k=min(2, len(module.ancillas)))
        for source in sources:
            module.cx(source, module.outputs[0])
        return module

    def _random_gate(self, module: QModule, pool: List[Qubit]) -> None:
        rng = self._rng
        choice = rng.random()
        if choice < 0.25 or len(pool) < 2:
            module.x(rng.choice(pool))
        elif choice < 0.65 or len(pool) < 3:
            a, b = rng.sample(pool, k=2)
            module.cx(a, b)
        else:
            a, b, c = rng.sample(pool, k=3)
            module.ccx(a, b, c)


def synthetic_program(name: str) -> Program:
    """Build one of the named synthetic benchmarks of Table II."""
    key = name.lower()
    if key not in SYNTHETIC_SPECS:
        raise IRError(
            f"unknown synthetic benchmark {name!r}; "
            f"choose from {sorted(SYNTHETIC_SPECS)}"
        )
    return SyntheticGenerator(SYNTHETIC_SPECS[key]).generate()


def jasmine_small() -> Program:
    """Jasmine-s: small shallowly nested synthetic benchmark."""
    return synthetic_program("jasmine-s")


def elsa_small() -> Program:
    """Elsa-s: small heavy-workload synthetic benchmark."""
    return synthetic_program("elsa-s")


def belle_small() -> Program:
    """Belle-s: small deeply nested synthetic benchmark."""
    return synthetic_program("belle-s")


def jasmine() -> Program:
    """Jasmine: shallowly nested synthetic benchmark."""
    return synthetic_program("jasmine")


def elsa() -> Program:
    """Elsa: heavy-workload, shallowly nested synthetic benchmark."""
    return synthetic_program("elsa")


def belle() -> Program:
    """Belle: light-workload, deeply nested synthetic benchmark."""
    return synthetic_program("belle")
