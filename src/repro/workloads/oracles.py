"""Small reversible oracle benchmarks: RD53, 6SYM and 2OF5 (Table II).

All three are symmetric functions of their inputs, built from a shared
population-count submodule (a carry-save tree of full/half adders) whose
intermediate sums live on ancilla qubits — the classic pattern that makes
ancilla reclamation worthwhile even at NISQ scale.
"""

from __future__ import annotations

from repro.ir.program import Program, QModule
from repro.workloads.blocks import full_adder, half_adder


def popcount5() -> QModule:
    """Population count of 5 bits into a 3-bit result (used by RD53/2OF5).

    Parameters: inputs ``x[5]``; outputs ``w[3]`` receiving the binary
    weight.  Uses 4 ancillas for the intermediate carry-save sums.
    """
    module = QModule("popcount5", num_inputs=5, num_outputs=3, num_ancilla=4)
    x = module.inputs
    w = module.outputs
    s1, k1, s2, k2 = module.ancillas

    fa = full_adder()

    # Compute: x0+x1+x2 = s1 + 2*k1 ; x3+x4+s1 = s2 + 2*k2.
    module.begin_compute()
    module.call(fa, x[0], x[1], x[2], s1, k1)
    module.call(fa, x[3], x[4], s1, s2, k2)

    # Store: weight = s2 + 2*(k1 + k2); k1 + k2 = (k1 ^ k2) + 2*(k1 & k2).
    module.begin_store()
    module.cx(s2, w[0])
    module.cx(k1, w[1])
    module.cx(k2, w[1])
    module.ccx(k1, k2, w[2])
    return module


def popcount6() -> QModule:
    """Population count of 6 bits into a 3-bit result (used by 6SYM).

    Parameters: inputs ``x[6]``; outputs ``w[3]``.  Uses 6 ancillas.
    """
    module = QModule("popcount6", num_inputs=6, num_outputs=3, num_ancilla=6)
    x = module.inputs
    w = module.outputs
    s1, k1, s2, k2, s3, k3 = module.ancillas

    fa = full_adder()
    ha = half_adder()

    # Compute: two full adders over the six bits, then combine the carries.
    module.begin_compute()
    module.call(fa, x[0], x[1], x[2], s1, k1)
    module.call(fa, x[3], x[4], x[5], s2, k2)
    # s1 + s2 = s3 + 2*k3 (ones place of the total).
    module.call(ha, s1, s2, s3, k3)

    # Store: weight = s3 + 2*(k1 + k2 + k3); the twos place can carry into
    # the fours place, so fold the three carry bits with Toffoli logic.
    module.begin_store()
    module.cx(s3, w[0])
    module.cx(k1, w[1])
    module.cx(k2, w[1])
    module.cx(k3, w[1])
    module.ccx(k1, k2, w[2])
    module.ccx(k1, k3, w[2])
    module.ccx(k2, k3, w[2])
    return module


def rd53() -> Program:
    """RD53: weight function with 5 inputs and 3 outputs (Table II)."""
    counter = popcount5()
    entry = QModule("rd53_main", num_inputs=5, num_outputs=3, num_ancilla=0)
    entry.begin_compute()
    entry.call(counter, *(entry.inputs + entry.outputs))
    return Program(entry, name="RD53")


def sym6() -> Program:
    """6SYM: symmetric function of 6 inputs, 1 output (Table II).

    The output is 1 exactly when the input weight is 2, 3 or 4 — the
    standard ``sym6`` benchmark definition.
    """
    counter = popcount6()
    entry = QModule("sym6_main", num_inputs=6, num_outputs=1, num_ancilla=6)
    x = entry.inputs
    out = entry.outputs[0]
    w0, w1, w2, t_mid, u, t_four = entry.ancillas

    entry.begin_compute()
    entry.call(counter, x[0], x[1], x[2], x[3], x[4], x[5], w0, w1, w2)
    # weight in {2, 3}: binary 01x  ->  t_mid = ~w2 & w1.
    entry.x(w2)
    entry.ccx(w2, w1, t_mid)
    entry.x(w2)
    # weight == 4: binary 100  ->  t_four = w2 & ~w1 & ~w0, via u = w2 & ~w1.
    entry.x(w1)
    entry.ccx(w2, w1, u)
    entry.x(w1)
    entry.x(w0)
    entry.ccx(u, w0, t_four)
    entry.x(w0)

    # The two weight ranges are disjoint, so XOR-ing both flags gives the OR.
    entry.begin_store()
    entry.cx(t_mid, out)
    entry.cx(t_four, out)
    return Program(entry, name="6SYM")


def two_of_five() -> Program:
    """2OF5: output 1 iff exactly two of the five inputs are 1 (Table II)."""
    counter = popcount5()
    entry = QModule("two_of_five_main", num_inputs=5, num_outputs=1, num_ancilla=5)
    x = entry.inputs
    out = entry.outputs[0]
    w0, w1, w2, u, t = entry.ancillas

    entry.begin_compute()
    entry.call(counter, x[0], x[1], x[2], x[3], x[4], w0, w1, w2)
    # weight == 2: binary 010  ->  t = ~w2 & w1 & ~w0, via u = ~w2 & w1.
    entry.x(w2)
    entry.ccx(w2, w1, u)
    entry.x(w2)
    entry.x(w0)
    entry.ccx(u, w0, t)
    entry.x(w0)

    entry.begin_store()
    entry.cx(t, out)
    return Program(entry, name="2OF5")
