"""Modular-exponentiation-style workload (MODEXP, Table II and Figure 1).

Shor's algorithm spends almost all of its time in modular exponentiation,
a deeply nested reversible structure: for every exponent bit a controlled
modular multiplication, each built from multiplications, each built from
additions.  This module reproduces that *structure* — the call-graph
depth, the per-level ancilla registers, and the controlled data flow —
which is what drives the allocation/reclamation behaviour evaluated in
Figure 1 and Figures 9/10.

Substitution note: a bit-exact modular reduction circuit (comparator +
conditional subtraction) would roughly double the code without changing
the resource profile; here the reduction step folds the high half of the
double-width product into the low half with CNOTs (a fixed linear
"pseudo-reduction").  The workload is still a valid reversible circuit
with clean ancillas; only the arithmetic interpretation of the output is
simplified, which the resource-focused experiments never rely on.
"""

from __future__ import annotations

from repro.exceptions import IRError
from repro.ir.program import Program, QModule
from repro.workloads.multiplier import shift_add_multiplier


def controlled_modmul_step(width: int, name: str | None = None) -> QModule:
    """One controlled modular-multiplication (squaring) step.

    Parameters: ``ctrl``, value register ``v[width]``; outputs
    ``next_v[width]``.  When the control is set the output receives the
    pseudo-reduced square of ``v``; otherwise it receives ``v`` unchanged,
    mirroring the controlled-multiplier step of modular exponentiation.
    """
    if width < 2:
        raise IRError("modular multiplication width must be at least 2")
    product_width = 2 * width
    # Ancillas: a copy of v (so the multiplier sees two distinct operand
    # registers) plus the double-width product register.
    num_ancilla = width + product_width
    module = QModule(
        name or f"cmodmul{width}",
        num_inputs=1 + width,
        num_outputs=width,
        num_ancilla=num_ancilla,
    )
    ctrl = module.inputs[0]
    value = module.inputs[1:1 + width]
    next_value = module.outputs
    copy = module.ancillas[:width]
    product = module.ancillas[width:width + product_width]

    multiplier = shift_add_multiplier(width, controlled=False,
                                      name=f"mul{width}_modexp")

    # Compute: copy v, form the full square v * v into the product register.
    module.begin_compute()
    for j in range(width):
        module.cx(value[j], copy[j])
    module.call(multiplier, *(list(value) + list(copy) + list(product)))

    # Store: pseudo-reduce the product into the output under the control;
    # when the control is clear, pass the value through unchanged.
    module.begin_store()
    for j in range(width):
        module.ccx(ctrl, product[j], next_value[j])
        module.ccx(ctrl, product[j + width], next_value[j])
        # ctrl == 0: next_v = v  (X-conjugated control).
    module.x(ctrl)
    for j in range(width):
        module.ccx(ctrl, value[j], next_value[j])
    module.x(ctrl)
    return module


def modexp_program(width: int = 4, exponent_bits: int = 4,
                   name: str | None = None) -> Program:
    """Modular-exponentiation workload.

    Args:
        width: Bit width of the value registers (the paper's MODEXP works
            on cryptographically sized registers; the default keeps the
            laptop-scale run tractable and is configurable upward).
        exponent_bits: Number of controlled multiplication stages.
    """
    if exponent_bits < 1:
        raise IRError("exponent_bits must be at least 1")
    step = controlled_modmul_step(width)
    # Entry: exponent bits + initial value in, final value out; one
    # intermediate value register per stage lives on ancilla.
    num_ancilla = width * exponent_bits
    entry = QModule(
        "modexp_main",
        num_inputs=exponent_bits + width,
        num_outputs=width,
        num_ancilla=num_ancilla,
    )
    exponent = entry.inputs[:exponent_bits]
    value = entry.inputs[exponent_bits:]
    outputs = entry.outputs
    ancillas = list(entry.ancillas)
    stages = [ancillas[i * width:(i + 1) * width] for i in range(exponent_bits)]

    entry.begin_compute()
    current = list(value)
    for i in range(exponent_bits):
        target = stages[i]
        entry.call(step, exponent[i], *(current + target))
        current = target

    # Store: copy the final stage register onto the program outputs; the
    # top-level uncompute then cleans every intermediate stage register.
    entry.begin_store()
    for source, target in zip(current, outputs):
        entry.cx(source, target)
    return Program(entry, name=name or "MODEXP")


def modexp(width: int = 4, exponent_bits: int = 4) -> Program:
    """MODEXP with default laptop-scale parameters (Table II)."""
    return modexp_program(width=width, exponent_bits=exponent_bits)
