"""Diagnostics and reports produced by the static compilation verifier.

A :class:`Diagnostic` is one finding: a rule id from :data:`RULES`, a
severity, a human-readable message, and enough coordinates (instruction
index, qubit, site, time) to locate the offending artifact inside the
:class:`~repro.core.result.CompilationResult` that was checked.  A
:class:`VerificationReport` collects the findings of one verification
pass in a deterministic order, together with coverage counters, so two
passes over the same result serialize byte-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Rule ids checked by :func:`repro.verify.checker.verify_result`, with the
#: invariant each one guards.  The table is ordered; reports list rules in
#: this order.
RULES: Mapping[str, str] = {
    "RV001": "every gate acts inside a recorded live segment of each "
             "operand qubit (no use-after-reclaim)",
    "RV002": "no two live virtual qubits occupy one physical site at "
             "overlapping times (mapping replay closes)",
    "RV003": "two-qubit gates act on topology-adjacent sites at their "
             "scheduled time (routing/SWAP accounting closes)",
    "RV004": "live-qubit count and headline metrics match the artifact "
             "(gate/swap counts, depth, AQV, peak vs. capacity)",
    "RV005": "reclamation accounting balances (no live re-issue; "
             "reclamation events are well-formed)",
    "RV006": "structural gate-stream lint (known gates, arities, "
             "distinct wires, per-qubit time order)",
}

#: Severity levels a diagnostic can carry, in increasing weight.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static verifier.

    Attributes:
        rule: Rule id from :data:`RULES` (e.g. ``"RV001"``).
        severity: ``"error"`` (an invariant is broken) or ``"warning"``.
        message: Human-readable description of the violation.
        module: Module name, for findings tied to a reclamation event.
        instruction: Index of the offending record in its stream — the
            scheduled-gate stream for gate findings, ``usage_segments``
            for segment findings, ``reclamation_events`` for event
            findings; -1 when the finding has no single instruction.
        qubit: Virtual qubit involved, or -1.
        site: Physical site involved, or -1.
        time: Scheduler time of the violation, or -1.
    """

    rule: str
    severity: str
    message: str
    module: str = ""
    instruction: int = -1
    qubit: int = -1
    site: int = -1
    time: int = -1

    def sort_key(self) -> Tuple:
        """Deterministic ordering: rule, then stream position, then text."""
        return (self.rule, self.instruction, self.qubit, self.site,
                self.time, self.message)

    def describe(self) -> str:
        """One-line ``rule severity: message`` rendering for CLI output."""
        where = []
        if self.instruction >= 0:
            where.append(f"instr {self.instruction}")
        if self.qubit >= 0:
            where.append(f"q{self.qubit}")
        if self.site >= 0:
            where.append(f"site {self.site}")
        if self.time >= 0:
            where.append(f"t={self.time}")
        suffix = f" [{', '.join(where)}]" if where else ""
        return f"{self.rule} {self.severity}: {self.message}{suffix}"

    def to_dict(self) -> Dict[str, object]:
        """Serialize to a JSON-compatible dictionary."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "module": self.module,
            "instruction": self.instruction,
            "qubit": self.qubit,
            "site": self.site,
            "time": self.time,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Diagnostic":
        """Rebuild a diagnostic from :meth:`to_dict` output."""
        return cls(
            rule=data["rule"],
            severity=data["severity"],
            message=data["message"],
            module=data.get("module", ""),
            instruction=data.get("instruction", -1),
            qubit=data.get("qubit", -1),
            site=data.get("site", -1),
            time=data.get("time", -1),
        )


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one static verification pass over a compilation result.

    Findings are stored sorted by :meth:`Diagnostic.sort_key`, and
    :meth:`to_dict` contains no wall-clock data, so verifying the same
    result twice produces byte-identical JSON.  The pass duration is
    carried separately in :attr:`verify_seconds` for overhead accounting
    (benchmarks), outside the deterministic payload.

    Attributes:
        program_name: Program the verified result compiled.
        machine_name: Machine the result was compiled for.
        policy_name: Policy label of the verified result.
        findings: Sorted diagnostics (empty when the artifact is clean).
        checked_gates: Scheduled gates examined.
        checked_segments: Usage segments examined.
        checked_events: Reclamation events examined.
        skipped_rules: Rules that could not run on this artifact (e.g.
            gate-stream rules without ``record_schedule=True``, topology
            rules for an unrecognised machine name), with reasons.
        verify_seconds: Wall-clock duration of the pass (not serialized).
    """

    program_name: str
    machine_name: str
    policy_name: str
    findings: Tuple[Diagnostic, ...] = ()
    checked_gates: int = 0
    checked_segments: int = 0
    checked_events: int = 0
    skipped_rules: Tuple[Tuple[str, str], ...] = ()
    verify_seconds: float = field(default=0.0, compare=False)

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was reported."""
        return not any(d.severity == "error" for d in self.findings)

    @property
    def num_errors(self) -> int:
        """Number of error-severity findings."""
        return sum(1 for d in self.findings if d.severity == "error")

    def rules_violated(self) -> Tuple[str, ...]:
        """Distinct rule ids with at least one finding, in RULES order."""
        hit = {d.rule for d in self.findings}
        return tuple(rule for rule in RULES if rule in hit)

    def counts_by_rule(self) -> Dict[str, int]:
        """Findings per rule id, for every rule in :data:`RULES`."""
        counts = {rule: 0 for rule in RULES}
        for diagnostic in self.findings:
            counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
        return counts

    def summary(self) -> str:
        """One-line verdict for tables and logs."""
        label = (f"{self.program_name}/{self.policy_name}"
                 f"@{self.machine_name}")
        if not self.findings:
            return (f"{label}: ok ({self.checked_gates} gates, "
                    f"{self.checked_segments} segments checked)")
        rules = ",".join(self.rules_violated())
        return f"{label}: {len(self.findings)} finding(s) [{rules}]"

    def to_dict(self) -> Dict[str, object]:
        """Serialize to a deterministic JSON-compatible dictionary."""
        return {
            "program_name": self.program_name,
            "machine_name": self.machine_name,
            "policy_name": self.policy_name,
            "ok": self.ok,
            "findings": [d.to_dict() for d in self.findings],
            "checked_gates": self.checked_gates,
            "checked_segments": self.checked_segments,
            "checked_events": self.checked_events,
            "skipped_rules": [list(pair) for pair in self.skipped_rules],
        }

    def to_json(self, path: Optional[str] = None, indent: int = 2) -> str:
        """Serialize to JSON text, optionally writing ``path``."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.write("\n")
        return text

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "VerificationReport":
        """Rebuild a report from :meth:`to_dict` output."""
        return cls(
            program_name=data["program_name"],
            machine_name=data["machine_name"],
            policy_name=data["policy_name"],
            findings=tuple(Diagnostic.from_dict(d)
                           for d in data.get("findings", ())),
            checked_gates=data.get("checked_gates", 0),
            checked_segments=data.get("checked_segments", 0),
            checked_events=data.get("checked_events", 0),
            skipped_rules=tuple((rule, reason) for rule, reason
                                in data.get("skipped_rules", ())),
        )


def make_report(program_name: str, machine_name: str, policy_name: str,
                findings: Sequence[Diagnostic], *,
                checked_gates: int = 0, checked_segments: int = 0,
                checked_events: int = 0,
                skipped_rules: Sequence[Tuple[str, str]] = (),
                verify_seconds: float = 0.0) -> VerificationReport:
    """Build a report with findings sorted into their deterministic order."""
    return VerificationReport(
        program_name=program_name,
        machine_name=machine_name,
        policy_name=policy_name,
        findings=tuple(sorted(findings, key=Diagnostic.sort_key)),
        checked_gates=checked_gates,
        checked_segments=checked_segments,
        checked_events=checked_events,
        skipped_rules=tuple(skipped_rules),
        verify_seconds=verify_seconds,
    )
