"""Static compilation-safety verification (the ``repro.verify`` subsystem).

A fast, simulation-free checker over compiled artifacts: one linear pass
over a :class:`~repro.core.result.CompilationResult` proves the
allocation/reclamation/mapping story self-consistent (rules RV001-RV006),
so performance rewrites of the compile hot path can be gated on "the
verifier still reports zero findings" instead of bit-level simulation,
which cannot scale to paper-size circuits.

Entry points:

* :func:`verify_result` — check one result, returning a deterministic
  :class:`VerificationReport` of :class:`Diagnostic` findings.
* :data:`~repro.verify.mutate.MUTATIONS` /
  :func:`~repro.verify.mutate.apply_mutation` — the mutation-injection
  harness that corrupts known-good results to prove each rule actually
  fires (the verifier's own test oracle).
* ``Session(verify=True)``, the ``verify`` CLI subcommand and the
  service's ``verify=`` flag wire the pass through every layer.
"""

from repro.verify.checker import topology_for_machine_name, verify_result
from repro.verify.diagnostics import (
    RULES,
    Diagnostic,
    VerificationReport,
    make_report,
)
from repro.verify.mutate import (
    MUTATIONS,
    Mutation,
    applicable_mutations,
    apply_mutation,
)

__all__ = [
    "RULES",
    "Diagnostic",
    "VerificationReport",
    "make_report",
    "verify_result",
    "topology_for_machine_name",
    "MUTATIONS",
    "Mutation",
    "apply_mutation",
    "applicable_mutations",
]
