"""Mutation injection: corrupt known-good results to exercise the verifier.

Each :class:`Mutation` takes a clean :class:`~repro.core.result.CompilationResult`
and returns a corrupted copy modelling one class of compiler bug — the
kind a hot-path rewrite could silently introduce — together with the rule
id the static verifier must report for it.  The differential tests apply
every applicable mutation to real compiles and assert the designated rule
fires, which is what makes the verifier a trustworthy acceptance gate:
it is tested against known-bad artifacts, not just known-good ones.

Mutations return ``None`` when a result lacks the artifact they corrupt
(e.g. no recorded schedule); callers skip those.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.result import CompilationResult
from repro.scheduler.events import ScheduledGate
from repro.scheduler.tracker import UsageSegment


def _gate_indices(result: CompilationResult, *, routed: bool = False,
                  min_qubits: int = 0) -> List[int]:
    return [index for index, event in enumerate(result.scheduled_gates)
            if event.routed == routed
            and len(event.virtual_qubits) >= min_qubits]


def _replace_gate(result: CompilationResult, index: int,
                  event: ScheduledGate) -> CompilationResult:
    events = list(result.scheduled_gates)
    events[index] = event
    return replace(result, scheduled_gates=tuple(events))


def _covering_segment(result: CompilationResult, qubit: int,
                      start: int, finish: int) -> Optional[int]:
    for index, segment in enumerate(result.usage_segments):
        if (segment.qubit == qubit and segment.start <= start
                and finish <= segment.end):
            return index
    return None


# ----------------------------------------------------------------------
# Mutation implementations
# ----------------------------------------------------------------------
def truncate_segment(result: CompilationResult) -> Optional[CompilationResult]:
    """Shift a usage segment's end before its last gate (use-after-reclaim).

    Models liveness bookkeeping that closes a segment too early — the
    qubit keeps receiving gates after its recorded reclamation.
    """
    for index in reversed(_gate_indices(result, min_qubits=1)):
        event = result.scheduled_gates[index]
        for qubit in event.virtual_qubits:
            seg_index = _covering_segment(result, qubit, event.start,
                                          event.finish)
            if seg_index is None:
                continue
            segment = result.usage_segments[seg_index]
            segments = list(result.usage_segments)
            segments[seg_index] = UsageSegment(
                qubit=segment.qubit, start=segment.start,
                end=event.finish - 1,
            )
            return replace(result, usage_segments=tuple(segments))
    return None


def swap_mapping(result: CompilationResult) -> Optional[CompilationResult]:
    """Exchange the sites of two final-mapping entries (mapping corruption).

    Models a layout table whose entries drifted from the schedule — the
    reverse replay from ``final_sites`` no longer matches the recorded
    gate sites.
    """
    touched = [qubit
               for index in _gate_indices(result, min_qubits=1)
               for qubit in result.scheduled_gates[index].virtual_qubits]
    entries = list(result.final_sites)
    chosen: List[int] = []
    for position, (virtual, _site) in enumerate(entries):
        if virtual in touched:
            chosen.append(position)
        if len(chosen) == 2:
            break
    if len(chosen) < 2:
        return None
    first, second = chosen
    qubit_a, site_a = entries[first]
    qubit_b, site_b = entries[second]
    entries[first] = (qubit_a, site_b)
    entries[second] = (qubit_b, site_a)
    return replace(result, final_sites=tuple(entries))


def nonadjacent_gate(result: CompilationResult) -> Optional[CompilationResult]:
    """Teleport a two-qubit gate's control site (routing that fails to close).

    Models a router that stopped short: the committed gate acts across
    the machine instead of on adjacent sites.  Only applies on machines
    with swap-routing adjacency constraints (the rule is vacuous
    elsewhere).
    """
    from repro.verify.checker import topology_for_machine_name

    rebuilt = topology_for_machine_name(result.machine_name)
    if rebuilt is None:
        return None
    topology, communication = rebuilt
    if communication != "swap" or topology.is_fully_connected:
        return None
    for index in _gate_indices(result, min_qubits=2):
        event = result.scheduled_gates[index]
        target = event.sites[-1]
        far_site = next(
            (site for site in range(topology.num_sites)
             if site != target and not topology.are_adjacent(site, target)),
            None,
        )
        if far_site is None:
            return None
        sites = list(event.sites)
        sites[-2] = far_site
        return _replace_gate(result, index, replace(event,
                                                    sites=tuple(sites)))
    return None


def drop_uncompute(result: CompilationResult) -> Optional[CompilationResult]:
    """Silently drop a gate from the stream (a lost uncompute gate).

    Models an uncompute block that was skipped without accounting for
    it — the stream no longer carries the gates the metrics claim.
    """
    indices = _gate_indices(result)
    if not indices:
        return None
    events = list(result.scheduled_gates)
    del events[indices[-1]]
    return replace(result, scheduled_gates=tuple(events))


def inflate_peak(result: CompilationResult) -> Optional[CompilationResult]:
    """Overstate peak liveness past the qubit footprint (capacity breach).

    Models liveness accounting that leaks segments: the reported peak
    exceeds every qubit the compile ever created.
    """
    return replace(result, peak_live_qubits=result.num_qubits_used + 7)


def overlap_segment(result: CompilationResult) -> Optional[CompilationResult]:
    """Duplicate a live segment (the heap re-issued a live qubit).

    Models an ancilla heap that hands out a qubit that was never
    reclaimed — the qubit holds two overlapping usage segments.
    """
    for segment in result.usage_segments:
        if segment.duration > 0:
            return replace(result, usage_segments=result.usage_segments
                           + (segment,))
    return None


def unknown_gate(result: CompilationResult) -> Optional[CompilationResult]:
    """Rename a gate to one outside the IR gate set (structural corruption)."""
    indices = _gate_indices(result)
    if not indices:
        return None
    event = result.scheduled_gates[indices[0]]
    return _replace_gate(result, indices[0],
                         replace(event, name="bogus_gate"))


def duplicate_wire(result: CompilationResult) -> Optional[CompilationResult]:
    """Fold a multi-qubit gate's operands onto one wire (aliased operands)."""
    for index in _gate_indices(result, min_qubits=2):
        event = result.scheduled_gates[index]
        qubits = (event.virtual_qubits[-1],) * len(event.virtual_qubits)
        return _replace_gate(result, index,
                             replace(event, virtual_qubits=qubits))
    return None


def reorder_gates(result: CompilationResult) -> Optional[CompilationResult]:
    """Swap two time-ordered events on one qubit (stream order corruption)."""
    last_seen: Dict[int, int] = {}
    for index, event in enumerate(result.scheduled_gates):
        if event.duration <= 0:
            continue
        for qubit in event.virtual_qubits:
            previous = last_seen.get(qubit)
            if previous is not None:
                earlier = result.scheduled_gates[previous]
                if earlier.finish <= event.start and earlier.duration > 0:
                    events = list(result.scheduled_gates)
                    events[previous], events[index] = (events[index],
                                                       events[previous])
                    return replace(result, scheduled_gates=tuple(events))
            last_seen[qubit] = index
    return None


@dataclass(frozen=True)
class Mutation:
    """One corruption class with the rule id designated to catch it.

    Attributes:
        name: Stable mutation name (test parameter / CLI key).
        rule: Rule id the verifier must report when this corruption is
            injected.
        apply: Callable producing the corrupted copy, or ``None`` when
            the result lacks the artifact this mutation targets.
        description: What compiler bug the corruption models.
    """

    name: str
    rule: str
    apply: Callable[[CompilationResult], Optional[CompilationResult]]
    description: str


#: Every corruption class, keyed by name.  Each maps to the single rule
#: id designated to catch it (other rules may fire too; the designated
#: one must).
MUTATIONS: Dict[str, Mutation] = {
    mutation.name: mutation
    for mutation in (
        Mutation("truncate-segment", "RV001", truncate_segment,
                 "segment closed before its last gate (use-after-reclaim)"),
        Mutation("swap-mapping", "RV002", swap_mapping,
                 "two final-mapping entries exchanged sites"),
        Mutation("nonadjacent-gate", "RV003", nonadjacent_gate,
                 "two-qubit gate committed on non-adjacent sites"),
        Mutation("drop-uncompute", "RV004", drop_uncompute,
                 "gate dropped from the stream without accounting"),
        Mutation("inflate-peak", "RV004", inflate_peak,
                 "peak liveness overstated past the qubit footprint"),
        Mutation("overlap-segment", "RV005", overlap_segment,
                 "heap re-issued a qubit that was still live"),
        Mutation("unknown-gate", "RV006", unknown_gate,
                 "gate renamed outside the IR gate set"),
        Mutation("duplicate-wire", "RV006", duplicate_wire,
                 "multi-qubit gate operands folded onto one wire"),
        Mutation("reorder-gates", "RV006", reorder_gates,
                 "two same-qubit events swapped out of time order"),
    )
}


def apply_mutation(result: CompilationResult,
                   name: str) -> Optional[CompilationResult]:
    """Apply the named mutation; ``None`` when it does not apply.

    Raises:
        KeyError: If ``name`` is not in :data:`MUTATIONS`.
    """
    return MUTATIONS[name].apply(result)


def applicable_mutations(result: CompilationResult) -> List[str]:
    """Names of the mutations that can corrupt this particular result."""
    return [name for name, mutation in MUTATIONS.items()
            if mutation.apply(result) is not None]
