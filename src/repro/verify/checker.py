"""The static compilation-safety verifier (rules RV001-RV006).

One linear pass over a :class:`~repro.core.result.CompilationResult` — the
scheduled gate stream, the usage segments, the reclamation events and the
final qubit->site mapping — checks the allocation/reclamation/mapping
story without any simulation:

* **RV001** every gate falls inside a recorded live segment of each
  operand qubit (no use-after-reclaim without re-allocation).  Router
  swaps are exempt: moving a reclaimed ``|0>`` qubit is legal.
* **RV002** the qubit->site mapping closes: the final placement is
  injective, and replaying the gate stream backwards from
  ``final_sites`` (undoing router swaps) must place every gate's
  operands exactly on their recorded sites — two virtual qubits never
  share a physical site.
* **RV003** on swap-routed machines every router swap and every
  committed multi-qubit gate acts on topology-adjacent sites.  For gates
  with several controls only the last-resolved control is guaranteed
  adjacent at commit time (earlier controls may be displaced by the
  routing of later ones), matching the scheduler's pairwise resolution.
* **RV004** headline metrics match the artifact: gate/swap counts,
  depth, AQV, qubit footprint and peak liveness against machine capacity.
* **RV005** reclamation accounting balances: a qubit is never re-issued
  while one of its usage segments is still open, and every logged
  reclamation event is well-formed (level >= 1 — the top-level ``Free``
  never logs — covering at least one ancilla).
* **RV006** structural gate-stream lint: known gate names, correct
  arities, distinct wire operands, per-qubit monotone time order.

The pass needs the machine topology only for RV003 and the capacity half
of RV004; it rebuilds the exact coupling map from ``machine_name`` (the
machine models embed their topology in their names, e.g.
``nisq-grid-8x8``), so results of autosized compiles verify without
knowing the final ladder size.  Rules that cannot run on an artifact
(e.g. gate-stream rules when the result was compiled without
``record_schedule=True``) are listed in the report's ``skipped_rules``
instead of silently passing.
"""

from __future__ import annotations

import re
import time as _time
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.arch.machine import Machine
from repro.arch.topology import Topology
from repro.core.result import CompilationResult
from repro.ir.gates import GATE_SPECS
from repro.verify.diagnostics import (
    Diagnostic,
    VerificationReport,
    make_report,
)

_GRID_NAME = re.compile(r"^(nisq|ft)-grid-(\d+)x(\d+)$")
_LINE_NAME = re.compile(r"^(nisq|ft)-line-(\d+)$")
_FULL_NAME = re.compile(r"^(nisq|ft)-full-(\d+)$")
_IDEAL_NAME = re.compile(r"^ideal-(\d+)$")


@lru_cache(maxsize=64)
def topology_for_machine_name(name: str) -> Optional[Tuple[Topology, str]]:
    """Rebuild (topology, communication kind) from a machine's report name.

    Returns None for names the machine models do not produce (custom
    machines); the verifier then skips topology-dependent checks.
    """
    match = _GRID_NAME.match(name)
    if match:
        kind, rows, cols = match.groups()
        communication = "swap" if kind == "nisq" else "braid"
        return Topology.grid(int(rows), int(cols)), communication
    match = _LINE_NAME.match(name)
    if match:
        kind, sites = match.groups()
        communication = "swap" if kind == "nisq" else "braid"
        return Topology.line(int(sites)), communication
    match = _FULL_NAME.match(name)
    if match:
        kind, sites = match.groups()
        communication = "swap" if kind == "nisq" else "braid"
        return Topology.fully_connected(int(sites)), communication
    match = _IDEAL_NAME.match(name)
    if match:
        return Topology.fully_connected(int(match.group(1))), "none"
    return None


class _Collector:
    """Accumulates findings with a deterministic per-rule cap.

    Corrupted artifacts tend to cascade (one bad mapping entry fails
    every later gate); capping keeps reports readable and verification
    linear, while a summary diagnostic records how many findings each
    rule suppressed.
    """

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self.findings: List[Diagnostic] = []
        self._counts: Dict[str, int] = {}

    def add(self, rule: str, message: str, *, severity: str = "error",
            module: str = "", instruction: int = -1, qubit: int = -1,
            site: int = -1, time: int = -1) -> None:
        count = self._counts.get(rule, 0) + 1
        self._counts[rule] = count
        if count > self.cap:
            return
        self.findings.append(Diagnostic(
            rule=rule, severity=severity, message=message, module=module,
            instruction=instruction, qubit=qubit, site=site, time=time,
        ))

    def finish(self) -> List[Diagnostic]:
        for rule, count in sorted(self._counts.items()):
            if count > self.cap:
                self.findings.append(Diagnostic(
                    rule=rule, severity="error",
                    message=f"{count - self.cap} additional {rule} "
                            f"finding(s) suppressed",
                    instruction=1 << 30,
                ))
        return self.findings


def verify_result(result: CompilationResult, *,
                  machine: Optional[Machine] = None,
                  max_findings_per_rule: int = 25) -> VerificationReport:
    """Statically verify one compilation result against rules RV001-RV006.

    Args:
        result: The result to check.  Full coverage (gate-stream rules)
            needs the compile to have run with ``record_schedule=True``;
            otherwise those rules are reported as skipped.
        machine: Optional live machine; when omitted, the topology is
            rebuilt from ``result.machine_name``.
        max_findings_per_rule: Cap on reported findings per rule (a
            trailing summary diagnostic counts anything suppressed).

    Returns:
        A deterministic :class:`~repro.verify.diagnostics.VerificationReport`.
    """
    started = _time.perf_counter()
    out = _Collector(max_findings_per_rule)
    skipped: List[Tuple[str, str]] = []

    if machine is not None:
        topology: Optional[Topology] = machine.topology
        communication = machine.communication
    else:
        rebuilt = topology_for_machine_name(result.machine_name)
        if rebuilt is not None:
            topology, communication = rebuilt
        else:
            topology, communication = None, ""

    events = result.scheduled_gates
    segments = result.usage_segments

    # Per-qubit segment index shared by RV001 and RV005.
    by_qubit: Dict[int, List] = {}
    for index, segment in enumerate(segments):
        by_qubit.setdefault(segment.qubit, []).append((index, segment))
    for buckets in by_qubit.values():
        buckets.sort(key=lambda pair: (pair[1].start, pair[1].end))

    _check_structure(result, out)                                 # RV006
    _check_segments(result, by_qubit, out)                        # RV005
    _check_metrics(result, topology, out, skipped)                # RV004
    if events:
        _check_liveness(result, by_qubit, out)                    # RV001
        _check_mapping(result, out)                               # RV002
        _check_adjacency(result, topology, communication, out,
                         skipped)                                 # RV003
    else:
        reason = ("no recorded gate stream; compile with "
                  "record_schedule=True for full coverage")
        skipped.extend((rule, reason)
                       for rule in ("RV001", "RV002", "RV003"))

    return make_report(
        result.program_name, result.machine_name, result.policy_name,
        out.finish(),
        checked_gates=len(events),
        checked_segments=len(segments),
        checked_events=len(result.reclamation_events),
        skipped_rules=tuple(skipped),
        verify_seconds=_time.perf_counter() - started,
    )


# ----------------------------------------------------------------------
# RV006: structural gate-stream lint
# ----------------------------------------------------------------------
def _check_structure(result: CompilationResult, out: _Collector) -> None:
    last_finish: Dict[int, int] = {}
    for index, event in enumerate(result.scheduled_gates):
        if event.start < 0 or event.finish < event.start:
            out.add("RV006",
                    f"gate {event.name!r} has an invalid time window "
                    f"[{event.start}, {event.finish}]",
                    instruction=index, time=event.start)
        if len(set(event.virtual_qubits)) != len(event.virtual_qubits):
            out.add("RV006",
                    f"gate {event.name!r} has duplicate wire operands "
                    f"{event.virtual_qubits}",
                    instruction=index, time=event.start)
        if event.routed:
            # A router swap records its two sites; virtual_qubits holds
            # only the live occupants (0-2: swapping into an empty site
            # is how fresh ancillas travel).
            if (event.name != "swap" or len(event.sites) != 2
                    or len(event.virtual_qubits) > 2):
                out.add("RV006",
                        f"routed event {index} must be a two-site swap, "
                        f"got {event.name!r} on {event.sites}",
                        instruction=index, time=event.start)
        else:
            if len(event.sites) != len(event.virtual_qubits):
                out.add("RV006",
                        f"gate {event.name!r} records {len(event.sites)} "
                        f"site(s) for {len(event.virtual_qubits)} "
                        f"operand(s)",
                        instruction=index, time=event.start)
            spec = GATE_SPECS.get(event.name)
            if spec is None:
                out.add("RV006",
                        f"unknown gate {event.name!r}",
                        instruction=index, time=event.start)
            elif spec.num_qubits and len(event.virtual_qubits) != spec.num_qubits:
                out.add("RV006",
                        f"gate {event.name!r} expects {spec.num_qubits} "
                        f"operand(s), got {len(event.virtual_qubits)}",
                        instruction=index, time=event.start)
        for qubit in event.virtual_qubits:
            previous = last_finish.get(qubit)
            if previous is not None and event.start < previous:
                out.add("RV006",
                        f"gate {event.name!r} starts at {event.start} but "
                        f"qubit {qubit} is busy until {previous} "
                        f"(stream out of per-qubit time order)",
                        instruction=index, qubit=qubit, time=event.start)
            last_finish[qubit] = max(previous or 0, event.finish)


# ----------------------------------------------------------------------
# RV005: reclamation accounting
# ----------------------------------------------------------------------
def _check_segments(result: CompilationResult,
                    by_qubit: Dict[int, List], out: _Collector) -> None:
    for qubit, buckets in sorted(by_qubit.items()):
        previous = None
        for index, segment in buckets:
            if segment.end < segment.start:
                out.add("RV005",
                        f"usage segment of qubit {qubit} ends at "
                        f"{segment.end}, before its start {segment.start}",
                        instruction=index, qubit=qubit, time=segment.start)
            if previous is not None and segment.start < previous[1].end:
                out.add("RV005",
                        f"qubit {qubit} re-issued at {segment.start} while "
                        f"still live until {previous[1].end} (heap handed "
                        f"out a live qubit)",
                        instruction=index, qubit=qubit, time=segment.start)
            previous = (index, segment)
    for index, event in enumerate(result.reclamation_events):
        if event.num_ancilla < 1:
            out.add("RV005",
                    f"reclamation event for {event.module!r} covers "
                    f"{event.num_ancilla} ancilla(e); every logged decision "
                    f"covers at least one",
                    module=event.module, instruction=index)
        if event.level < 1:
            out.add("RV005",
                    f"reclamation event for {event.module!r} at call level "
                    f"{event.level}; the top-level Free never logs a "
                    f"decision",
                    module=event.module, instruction=index)


# ----------------------------------------------------------------------
# RV004: capacity and headline-metric closure
# ----------------------------------------------------------------------
def _check_metrics(result: CompilationResult, topology: Optional[Topology],
                   out: _Collector,
                   skipped: List[Tuple[str, str]]) -> None:
    aqv = sum(segment.duration for segment in result.usage_segments)
    if aqv != result.active_quantum_volume:
        out.add("RV004",
                f"active_quantum_volume={result.active_quantum_volume} but "
                f"the usage segments sum to {aqv}")
    if not 0 <= result.peak_live_qubits <= result.num_qubits_used:
        out.add("RV004",
                f"peak_live_qubits={result.peak_live_qubits} outside "
                f"[0, num_qubits_used={result.num_qubits_used}]")
    if result.num_entry_params > result.num_qubits_used:
        out.add("RV004",
                f"num_entry_params={result.num_entry_params} exceeds "
                f"num_qubits_used={result.num_qubits_used}")
    if result.uncompute_gate_count < 0:
        # No upper bound against gate_count: nested uncompute replays
        # legitimately count a gate once per enclosing uncompute block.
        out.add("RV004",
                f"uncompute_gate_count={result.uncompute_gate_count} "
                f"is negative")

    seen_qubits = {segment.qubit for segment in result.usage_segments}
    for qubit in sorted(seen_qubits):
        if not 0 <= qubit < result.num_qubits_used:
            out.add("RV004",
                    f"usage segment references qubit {qubit}, outside the "
                    f"{result.num_qubits_used} virtual qubits used",
                    qubit=qubit)
    if result.usage_segments:
        for qubit in range(result.num_qubits_used):
            if qubit not in seen_qubits:
                out.add("RV004",
                        f"virtual qubit {qubit} was created but has no "
                        f"usage segment",
                        qubit=qubit)

    events = result.scheduled_gates
    if events:
        gates = sum(1 for event in events if not event.routed)
        swaps = sum(1 for event in events if event.routed)
        depth = max(event.finish for event in events)
        if gates != result.gate_count:
            out.add("RV004",
                    f"gate_count={result.gate_count} but the stream holds "
                    f"{gates} non-routed gate(s)")
        if swaps != result.swap_count:
            out.add("RV004",
                    f"swap_count={result.swap_count} but the stream holds "
                    f"{swaps} router swap(s)")
        if depth != result.circuit_depth:
            out.add("RV004",
                    f"circuit_depth={result.circuit_depth} but the stream's "
                    f"makespan is {depth}")
    for index, segment in enumerate(result.usage_segments):
        if segment.end > result.circuit_depth:
            out.add("RV004",
                    f"usage segment of qubit {segment.qubit} ends at "
                    f"{segment.end}, past the circuit depth "
                    f"{result.circuit_depth}",
                    instruction=index, qubit=segment.qubit,
                    time=segment.end)

    if topology is None:
        skipped.append(("RV004",
                        f"capacity checks skipped: machine "
                        f"{result.machine_name!r} has no recognisable "
                        f"topology"))
        return
    capacity = topology.num_sites
    if result.num_qubits_used > capacity:
        out.add("RV004",
                f"{result.num_qubits_used} virtual qubits used on a "
                f"machine with {capacity} site(s)")
    if result.peak_live_qubits > capacity:
        out.add("RV004",
                f"peak_live_qubits={result.peak_live_qubits} exceeds the "
                f"machine capacity {capacity}")
    for virtual, site in result.final_sites:
        if not 0 <= site < capacity:
            out.add("RV004",
                    f"virtual qubit {virtual} mapped to site {site}, "
                    f"outside the {capacity}-site machine",
                    qubit=virtual, site=site)
    for index, event in enumerate(events):
        for site in event.sites:
            if not 0 <= site < capacity:
                out.add("RV004",
                        f"gate {event.name!r} touches site {site}, outside "
                        f"the {capacity}-site machine",
                        instruction=index, site=site, time=event.start)


# ----------------------------------------------------------------------
# RV001: gates stay inside live segments
# ----------------------------------------------------------------------
def _check_liveness(result: CompilationResult,
                    by_qubit: Dict[int, List], out: _Collector) -> None:
    for index, event in enumerate(result.scheduled_gates):
        if event.routed:
            # Router swaps may legally move a reclaimed |0> qubit; they
            # act on sites, not on live program state.
            continue
        for qubit in event.virtual_qubits:
            buckets = by_qubit.get(qubit, ())
            covered = any(segment.start <= event.start
                          and event.finish <= segment.end
                          for _, segment in buckets)
            if not covered:
                out.add("RV001",
                        f"gate {event.name!r} acts on qubit {qubit} during "
                        f"[{event.start}, {event.finish}], outside every "
                        f"recorded live segment (use after reclaim, or use "
                        f"before allocation)",
                        instruction=index, qubit=qubit, time=event.start)


# ----------------------------------------------------------------------
# RV002: mapping replay (double-booked sites)
# ----------------------------------------------------------------------
def _check_mapping(result: CompilationResult, out: _Collector) -> None:
    position: Dict[int, int] = {}
    for virtual, site in result.final_sites:
        if virtual in position:
            out.add("RV002",
                    f"virtual qubit {virtual} appears twice in final_sites",
                    qubit=virtual, site=site)
            continue
        position[virtual] = site
    by_site: Dict[int, List[int]] = {}
    for virtual, site in position.items():
        by_site.setdefault(site, []).append(virtual)
    for site, virtuals in sorted(by_site.items()):
        if len(virtuals) > 1:
            out.add("RV002",
                    f"final mapping places qubits {sorted(virtuals)} on "
                    f"one site",
                    site=site)

    unmapped_reported = set()
    # Walk the stream backwards from the final placement, undoing router
    # swaps; every committed gate must then find its operands exactly on
    # their recorded sites.  Sound because sites change hands only
    # through router swaps and never host two virtuals at once (the
    # layout never frees a site, so tracking a qubit's site across its
    # whole history cannot collide with another qubit's legally).
    for index in range(len(result.scheduled_gates) - 1, -1, -1):
        event = result.scheduled_gates[index]
        if event.routed and len(event.sites) == 2:
            site_a, site_b = event.sites
            for qubit in event.virtual_qubits:
                current = position.get(qubit)
                if current == site_a:
                    position[qubit] = site_b
                elif current == site_b:
                    position[qubit] = site_a
                elif qubit not in position:
                    if qubit not in unmapped_reported:
                        unmapped_reported.add(qubit)
                        out.add("RV002",
                                f"qubit {qubit} appears in the gate stream "
                                f"but has no final_sites entry",
                                instruction=index, qubit=qubit)
                else:
                    out.add("RV002",
                            f"router swap on sites ({site_a}, {site_b}) "
                            f"involves qubit {qubit}, which the mapping "
                            f"replay places on site {current}",
                            instruction=index, qubit=qubit, site=current,
                            time=event.start)
            continue
        for qubit, site in zip(event.virtual_qubits, event.sites):
            current = position.get(qubit)
            if qubit not in position:
                if qubit not in unmapped_reported:
                    unmapped_reported.add(qubit)
                    out.add("RV002",
                            f"qubit {qubit} appears in the gate stream but "
                            f"has no final_sites entry",
                            instruction=index, qubit=qubit)
                position[qubit] = site
            elif current != site:
                out.add("RV002",
                        f"gate {event.name!r} records qubit {qubit} on "
                        f"site {site}, but the mapping replay places it on "
                        f"site {current}",
                        instruction=index, qubit=qubit, site=site,
                        time=event.start)
                position[qubit] = site  # resync to bound the cascade
        if not event.routed:
            distinct = set(event.sites)
            if len(distinct) != len(event.sites):
                out.add("RV002",
                        f"gate {event.name!r} places two operands on one "
                        f"site ({event.sites})",
                        instruction=index, time=event.start)

    # Note: the replayed *initial* placement is deliberately not checked
    # for injectivity.  A qubit created mid-program replays back to its
    # creation site for all earlier times (router swaps before its
    # creation never list it), and another qubit may have legitimately
    # occupied that site before swapping away — so collisions there are
    # fictitious.  Double-booking is instead caught by the final-mapping
    # injectivity above plus the per-gate site consistency along the
    # replay.


# ----------------------------------------------------------------------
# RV003: adjacency / routing closure
# ----------------------------------------------------------------------
def _check_adjacency(result: CompilationResult,
                     topology: Optional[Topology], communication: str,
                     out: _Collector,
                     skipped: List[Tuple[str, str]]) -> None:
    if topology is None:
        skipped.append(("RV003",
                        f"machine {result.machine_name!r} has no "
                        f"recognisable topology"))
        return
    if communication != "swap" or topology.is_fully_connected:
        skipped.append(("RV003",
                        f"machine {result.machine_name!r} imposes no "
                        f"swap-routing adjacency constraints"))
        return
    for index, event in enumerate(result.scheduled_gates):
        if event.routed:
            if len(event.sites) == 2:
                site_a, site_b = event.sites
                if site_a == site_b or not topology.are_adjacent(site_a,
                                                                 site_b):
                    out.add("RV003",
                            f"router swap acts on non-adjacent sites "
                            f"({site_a}, {site_b})",
                            instruction=index, site=site_a,
                            time=event.start)
            continue
        if len(event.sites) < 2:
            continue
        # Pairwise resolution routes each control next to the target in
        # turn; only the last-resolved control is guaranteed to still be
        # adjacent when the gate commits.
        control, target = event.sites[-2], event.sites[-1]
        if not topology.are_adjacent(control, target):
            out.add("RV003",
                    f"gate {event.name!r} commits with operand sites "
                    f"({control}, {target}) that are not adjacent",
                    instruction=index, site=control, time=event.start)
