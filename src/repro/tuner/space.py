"""Declarative search spaces over compiler-configuration knobs.

A :class:`SearchSpace` is an ordered set of parameters — categorical
:class:`Choice` values (typically the allocation/reclamation policy
registries), integer :class:`IntRange` grids and float
:class:`FloatRange` grids — every one of which names a
:class:`~repro.core.compiler.CompilerConfig` field.  A *candidate* is a
plain ``{field: value}`` dict drawn from the space; it overlays a base
config (a preset name or explicit config) to produce the
:class:`CompilerConfig` a trial compiles with, and it round-trips
unchanged into ``preset(name, **candidate)`` — the tuner's "best
config" export is exactly such a dict.

Every expansion is deterministic: :meth:`SearchSpace.grid` enumerates
the full cartesian product in declaration order, and
:meth:`SearchSpace.sample` draws a seeded random subset of that grid —
the same seed yields the same candidates in the same order, in any
process, which is what makes a seeded tuning run reproducible across
local and cluster backends.
"""

from __future__ import annotations

import itertools
import json
import random
from dataclasses import dataclass, fields, replace
from typing import Dict, Iterable, List, Mapping, Tuple, Union

from repro.exceptions import TunerError
from repro.core.compiler import POLICY_PRESETS, CompilerConfig
from repro.core.policies import (
    allocation_policy_names,
    reclamation_policy_names,
)

#: A candidate assignment: CompilerConfig field name -> value.
Candidate = Dict[str, object]


@dataclass(frozen=True)
class Choice:
    """A categorical parameter: one of a fixed tuple of values.

    Attributes:
        name: The :class:`~repro.core.compiler.CompilerConfig` field the
            parameter sets.
        values: The values to search over, in search order.
    """

    name: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise TunerError(f"parameter {self.name!r} has no values")
        if len(set(map(repr, self.values))) != len(self.values):
            raise TunerError(
                f"parameter {self.name!r} repeats a value: {self.values}")

    def grid_values(self) -> Tuple[object, ...]:
        """The parameter's grid points, in search order."""
        return self.values


@dataclass(frozen=True)
class IntRange:
    """An inclusive integer grid ``low, low+step, ..., <= high``."""

    name: str
    low: int
    high: int
    step: int = 1

    def __post_init__(self) -> None:
        if self.step < 1:
            raise TunerError(
                f"parameter {self.name!r} needs step >= 1, got {self.step}")
        if self.high < self.low:
            raise TunerError(
                f"parameter {self.name!r} has an empty range "
                f"[{self.low}, {self.high}]")

    def grid_values(self) -> Tuple[int, ...]:
        """The parameter's grid points, ascending."""
        return tuple(range(self.low, self.high + 1, self.step))


@dataclass(frozen=True)
class FloatRange:
    """``steps`` evenly spaced float grid points across ``[low, high]``."""

    name: str
    low: float
    high: float
    steps: int = 5

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise TunerError(
                f"parameter {self.name!r} needs steps >= 1, got {self.steps}")
        if self.high < self.low:
            raise TunerError(
                f"parameter {self.name!r} has an empty range "
                f"[{self.low}, {self.high}]")

    def grid_values(self) -> Tuple[float, ...]:
        """The parameter's grid points, ascending."""
        if self.steps == 1:
            return (float(self.low),)
        width = (self.high - self.low) / (self.steps - 1)
        return tuple(float(self.low + index * width)
                     for index in range(self.steps))


#: Anything a SearchSpace accepts as one parameter.
Parameter = Union[Choice, IntRange, FloatRange]


def candidate_key(candidate: Mapping[str, object]) -> str:
    """Canonical JSON identity of a candidate (sorted, compact).

    Used wherever candidates need a deterministic total order or a
    stable dictionary key: leaderboard tie-breaks, journal records,
    in-run deduplication.
    """
    return json.dumps(dict(candidate), sort_keys=True,
                      separators=(",", ":"))


def candidate_label(candidate: Mapping[str, object]) -> str:
    """Short human-readable ``field=value`` label for tables and logs."""
    return ",".join(f"{name}={value}"
                    for name, value in sorted(candidate.items()))


class SearchSpace:
    """An ordered collection of parameters over CompilerConfig fields.

    Args:
        params: The parameters, searched as a cartesian grid in
            declaration order (later parameters vary fastest).
        base: The config every candidate overlays — a
            :data:`~repro.core.compiler.POLICY_PRESETS` name or an
            explicit :class:`~repro.core.compiler.CompilerConfig`.

    Raises:
        TunerError: No parameters, a duplicated parameter name, or a
            parameter naming something that is not a CompilerConfig
            field.
    """

    def __init__(self, *params: Parameter,
                 base: Union[str, CompilerConfig] = "square") -> None:
        if not params:
            raise TunerError("a SearchSpace needs at least one parameter")
        valid = {f.name for f in fields(CompilerConfig)}
        seen = set()
        for param in params:
            if param.name in seen:
                raise TunerError(
                    f"parameter {param.name!r} appears twice in the space")
            if param.name not in valid:
                raise TunerError(
                    f"parameter {param.name!r} is not a CompilerConfig "
                    f"field; valid fields: {sorted(valid)}")
            seen.add(param.name)
        if isinstance(base, str):
            try:
                base = POLICY_PRESETS[base]
            except KeyError:
                raise TunerError(
                    f"unknown base preset {base!r}; choose from "
                    f"{sorted(POLICY_PRESETS)}") from None
        self.params: Tuple[Parameter, ...] = tuple(params)
        self.base = base

    # ------------------------------------------------------------------
    @classmethod
    def policy_space(cls, *extra: Parameter,
                     base: Union[str, CompilerConfig] = "square"
                     ) -> "SearchSpace":
        """The canonical policy space: every registered allocation x
        reclamation policy pair (plus any extra parameters).

        Reflects the live registries, so third-party policies registered
        through :mod:`repro.core.policies` are searched automatically.
        """
        return cls(
            Choice("allocation", tuple(allocation_policy_names())),
            Choice("reclamation", tuple(reclamation_policy_names())),
            *extra, base=base,
        )

    # ------------------------------------------------------------------
    def size(self) -> int:
        """Number of candidates in the full grid."""
        total = 1
        for param in self.params:
            total *= len(param.grid_values())
        return total

    def grid(self) -> List[Candidate]:
        """Every candidate, cartesian order (last parameter fastest)."""
        axes = [param.grid_values() for param in self.params]
        names = [param.name for param in self.params]
        return [dict(zip(names, values))
                for values in itertools.product(*axes)]

    def sample(self, n: int, seed: int = 0) -> List[Candidate]:
        """A seeded random subset of the grid, without replacement.

        Deterministic: the same ``(n, seed)`` always returns the same
        candidates in the same order.  ``n`` at or above the grid size
        returns a seeded shuffle of the whole grid.
        """
        if n < 1:
            raise TunerError(f"sample size must be >= 1, got {n}")
        candidates = self.grid()
        rng = random.Random(seed)
        if n >= len(candidates):
            rng.shuffle(candidates)
            return candidates
        return rng.sample(candidates, n)

    # ------------------------------------------------------------------
    def config_for(self, candidate: Mapping[str, object]) -> CompilerConfig:
        """The compiler config a candidate describes (base + overlay).

        The base's display ``label`` is cleared unless the candidate
        sets one, so every candidate reports under its own
        ``allocation+reclamation`` policy name instead of all shadowing
        the base preset's label.

        Raises:
            TunerError: The candidate sets a field outside this space's
                parameters.
        """
        names = {param.name for param in self.params}
        unknown = sorted(set(candidate) - names)
        if unknown:
            raise TunerError(
                f"candidate sets parameter(s) {unknown} outside the "
                f"space; searched parameters: {sorted(names)}")
        overlay = dict(candidate)
        overlay.setdefault("label", "")
        return replace(self.base, **overlay)

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """JSON-compatible description (part of the run fingerprint)."""
        described: List[Dict[str, object]] = []
        for param in self.params:
            if isinstance(param, Choice):
                described.append({"kind": "choice", "name": param.name,
                                  "values": list(param.values)})
            elif isinstance(param, IntRange):
                described.append({"kind": "int", "name": param.name,
                                  "low": param.low, "high": param.high,
                                  "step": param.step})
            else:
                described.append({"kind": "float", "name": param.name,
                                  "low": param.low, "high": param.high,
                                  "steps": param.steps})
        base = {f.name: getattr(self.base, f.name)
                for f in fields(CompilerConfig)}
        return {"params": described, "base": base}

    def __len__(self) -> int:
        return self.size()

    def __repr__(self) -> str:
        names = ", ".join(param.name for param in self.params)
        return f"SearchSpace({names}; {self.size()} candidates)"
