"""Tuning reports: leaderboards, Pareto fronts, best-config export.

A :class:`TuningReport` is the deterministic artefact of a
:class:`~repro.tuner.runner.TuningRun`: every candidate's final
standing, ranked best-first, with the Pareto front flagged for
multi-objective runs.  Exports are stable — the same run configuration
produces byte-identical :meth:`TuningReport.to_json` text on any
backend, which is how the demo and CI prove local-vs-cluster
equivalence — and the winner comes back as a
:func:`~repro.core.compiler.preset`-compatible override dict, ready to
drop into ``preset("square", **best)`` or a
:class:`~repro.api.sweep.SweepSpec` policy list.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import TunerError
from repro.tuner.objective import MultiObjective
from repro.tuner.space import Candidate, candidate_key, candidate_label


@dataclass(frozen=True)
class CandidateEvaluation:
    """One candidate's scored outcome in one round.

    Attributes:
        candidate: The evaluated config overrides.
        round_number: The round it was evaluated in.
        scale: The benchmark scale it compiled at.
        ok: True when every benchmark trial succeeded.
        score: Scalarized objective score (lower is better); None when
            any trial failed.
        metrics: Aggregate (summed-across-benchmarks) metric values;
            None when any trial failed.
        per_benchmark: Per-benchmark detail: ``{"ok": True, "metrics":
            {...}}`` or ``{"ok": False, "error": {...}}``.
    """

    candidate: Candidate
    round_number: int
    scale: str
    ok: bool
    score: Optional[float]
    metrics: Optional[Dict[str, float]]
    per_benchmark: Dict[str, Dict[str, object]]


@dataclass(frozen=True)
class RoundResult:
    """One completed strategy round: its evaluations, in round order."""

    number: int
    scale: str
    evaluations: List[CandidateEvaluation]

    def __len__(self) -> int:
        return len(self.evaluations)


class TuningReport:
    """The ranked outcome of a finished tuning run.

    Every candidate appears once, at its *final* evaluation (the
    furthest round it survived to).  Ranking: candidates from later
    rounds outrank earlier-eliminated ones; within a round, score
    ascending; ties break on the canonical candidate JSON so the order
    is identical in every process.  Failed candidates sink to the
    bottom of their round.

    Args:
        descriptor: The owning run's
            :meth:`~repro.tuner.runner.TuningRun.run_descriptor`.
        objective: The run's multi-objective.
        benchmarks: The benchmark suite candidates were scored on.
        rounds: Completed rounds, in execution order.
    """

    def __init__(self, descriptor: Mapping[str, object],
                 objective: MultiObjective,
                 benchmarks: Sequence[str],
                 rounds: Sequence[RoundResult]) -> None:
        if not rounds:
            raise TunerError("a TuningReport needs at least one round")
        self.descriptor = dict(descriptor)
        self.objective = objective
        self.benchmarks = tuple(benchmarks)
        self.rounds = list(rounds)
        self._standings = self._rank()

    # ------------------------------------------------------------------
    def _rank(self) -> List[CandidateEvaluation]:
        """Final standings: one evaluation per candidate, ranked."""
        final: Dict[str, CandidateEvaluation] = {}
        for round_ in self.rounds:  # later rounds overwrite earlier
            for evaluation in round_.evaluations:
                final[candidate_key(evaluation.candidate)] = evaluation

        def sort_key(evaluation: CandidateEvaluation):
            score = evaluation.score if evaluation.score is not None \
                else math.inf
            return (-evaluation.round_number, score,
                    candidate_key(evaluation.candidate))

        return sorted(final.values(), key=sort_key)

    @property
    def standings(self) -> List[CandidateEvaluation]:
        """Every candidate's final evaluation, best first."""
        return list(self._standings)

    @property
    def final_round(self) -> RoundResult:
        """The last completed round (where the winners live)."""
        return self.rounds[-1]

    def pareto_mask(self) -> List[bool]:
        """Pareto-front membership aligned with :attr:`standings`.

        The front is computed over the successful final-round
        evaluations (earlier-eliminated or failed candidates are never
        on it): the candidates no final-round survivor beats on every
        objective at once.
        """
        last = self.rounds[-1].number
        front_pool = [evaluation for evaluation in self._standings
                      if evaluation.round_number == last and evaluation.ok]
        mask = self.objective.pareto_front(
            [evaluation.metrics for evaluation in front_pool])
        on_front = {candidate_key(evaluation.candidate)
                    for evaluation, keep in zip(front_pool, mask) if keep}
        return [candidate_key(evaluation.candidate) in on_front
                for evaluation in self._standings]

    # ------------------------------------------------------------------
    def best(self) -> CandidateEvaluation:
        """The winning evaluation.

        Raises:
            TunerError: Every candidate failed.
        """
        top = self._standings[0]
        if not top.ok:
            raise TunerError(
                "every candidate failed; no best config to report "
                "(inspect the leaderboard rows' error columns)")
        return top

    def best_config(self) -> Dict[str, object]:
        """The winner as a ``preset()``-compatible override dict.

        ``preset("square", **report.best_config())`` (or any other base
        preset) rebuilds the winning compiler config; the dict also
        drops straight into
        :meth:`SweepSpec.with_config <repro.api.sweep.SweepSpec>` or a
        job descriptor's ``config`` overrides.
        """
        return dict(self.best().candidate)

    # ------------------------------------------------------------------
    def leaderboard_rows(self) -> List[Dict[str, object]]:
        """Flat ranked rows (for tables and CSV export).

        Columns: rank, candidate label, final scale, score, Pareto
        membership, the objective metrics' aggregate values, and an
        ``error`` column (empty for successes) when any candidate
        failed.
        """
        rows: List[Dict[str, object]] = []
        for rank, (evaluation, pareto) in enumerate(
                zip(self._standings, self.pareto_mask()), start=1):
            row: Dict[str, object] = {
                "rank": rank,
                "candidate": candidate_label(evaluation.candidate),
                "scale": evaluation.scale,
                "score": "" if evaluation.score is None
                else evaluation.score,
                "pareto": "*" if pareto else "",
            }
            for metric in self.objective.metrics:
                row[metric] = "" if evaluation.metrics is None \
                    else evaluation.metrics[metric]
            if not evaluation.ok:
                failures = [detail["error"]["error_type"]
                            for detail in evaluation.per_benchmark.values()
                            if not detail["ok"]]
                row["error"] = ",".join(sorted(set(failures)))
            rows.append(row)
        if any("error" in row for row in rows):
            for row in rows:
                row.setdefault("error", "")
        return rows

    def table(self, title: Optional[str] = None) -> str:
        """Aligned text leaderboard."""
        from repro.analysis.report import format_comparison, format_table

        if title:
            return format_comparison(title, self.leaderboard_rows())
        return format_table(self.leaderboard_rows())

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Full JSON-compatible report (deterministic fields only).

        Contains no timings, counters or backend identity — the export
        is a pure function of the run configuration and the (equally
        deterministic) compiler, so local and cluster runs of the same
        seeded search serialize byte-identically.
        """
        return {
            "run": self.descriptor,
            "benchmarks": list(self.benchmarks),
            "objective": self.objective.describe(),
            "rounds": [{"number": round_.number, "scale": round_.scale,
                        "candidates": len(round_)}
                       for round_ in self.rounds],
            "leaderboard": [{
                "rank": rank,
                "candidate": evaluation.candidate,
                "round": evaluation.round_number,
                "scale": evaluation.scale,
                "ok": evaluation.ok,
                "score": evaluation.score,
                "pareto": pareto,
                "metrics": evaluation.metrics,
                "benchmarks": evaluation.per_benchmark,
            } for rank, (evaluation, pareto) in enumerate(
                zip(self._standings, self.pareto_mask()), start=1)],
            "best": (self._standings[0].candidate
                     if self._standings[0].ok else None),
        }

    def to_json(self, path: Optional[str] = None) -> str:
        """Serialize the report (optionally writing ``path``)."""
        text = json.dumps(self.to_dict(), sort_keys=True, indent=1)
        if path is not None:
            with open(path, "w", encoding="utf-8") as stream:
                stream.write(text)
        return text

    def __repr__(self) -> str:
        return (f"TuningReport(rounds={len(self.rounds)}, "
                f"candidates={len(self._standings)}, "
                f"benchmarks={len(self.benchmarks)})")
