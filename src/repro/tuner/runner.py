"""The tuning run: strategy rounds executed through a pluggable backend.

A :class:`TuningRun` wires the tuner's pieces together: it asks its
:class:`~repro.tuner.strategies.SearchStrategy` for rounds of
candidates, turns ``candidate x benchmark x scale`` trials into ordinary
:class:`~repro.api.job.CompileJob` batches, executes them through a
pluggable backend — an in-process
:class:`~repro.api.session.Session`, a remote
:class:`~repro.service.client.ServiceClient`, or a
:class:`~repro.cluster.coordinator.ClusterCoordinator` driving a whole
fleet — and scores the outcomes with its
:class:`~repro.tuner.objective.MultiObjective`.

Two properties make runs cheap to repeat and safe to kill:

* **Fingerprint memoization.**  Trials are deduplicated by job
  fingerprint across the whole run, so a benchmark whose scale
  overrides do not change between racing rounds (or two candidates
  resolving to the same config) compiles exactly once.
* **An append-only JSONL journal.**  Every executed trial is journaled
  the moment its result lands.  A killed run resumes by pointing a new
  :class:`TuningRun` at the same journal: journaled trials are restored
  instead of recompiled (zero repeat compilations — observable through
  the backend's cache accounting), and the deterministic strategy
  replays the identical rounds from there.  A journal records its run's
  fingerprint, so resuming with a different space/objective/strategy/
  benchmark set fails fast instead of silently mixing runs.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.exceptions import TunerError
from repro.api.job import CompileJob, MachineSpec
from repro.api.session import Session
from repro.api.sweep import SweepEntry
from repro.tuner.objective import (
    MultiObjective,
    Objective,
    metric_values,
)
from repro.tuner.report import (
    CandidateEvaluation,
    RoundResult,
    TuningReport,
)
from repro.tuner.space import Candidate, SearchSpace, candidate_key
from repro.tuner.strategies import Round, SearchStrategy
from repro.workloads.registry import (
    benchmark_overrides,
    canonical_benchmark_name,
)

#: Journal schema version; bump on incompatible record changes.
JOURNAL_VERSION = 1

#: ``on_trial`` callback: one JSON-compatible trial record, fired after
#: the record has been journaled (so a callback that raises — or a
#: process killed inside one — never loses the trial).
TrialCallback = Callable[[Dict[str, object]], None]


@dataclass(frozen=True)
class Trial:
    """One evaluation unit: a candidate on one benchmark at one scale."""

    benchmark: str
    scale: str
    candidate: Candidate
    job: CompileJob
    fingerprint: str


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class _SessionBackend:
    """Runs trial batches through an in-process session."""

    kind = "session"

    def __init__(self, session: Session) -> None:
        self.session = session

    def run(self, jobs: Sequence[CompileJob]) -> Sequence[SweepEntry]:
        return self.session.run(jobs, isolate_failures=True)

    def __repr__(self) -> str:
        return f"_SessionBackend({self.session!r})"


class _RemoteBackend:
    """Runs trial batches through a remote ``run(jobs)`` surface — a
    :class:`~repro.service.client.ServiceClient` (one server) or a
    :class:`~repro.cluster.coordinator.ClusterCoordinator` (a fleet);
    both isolate job failures into structured entries already."""

    def __init__(self, target, kind: str) -> None:
        self.target = target
        self.kind = kind

    def run(self, jobs: Sequence[CompileJob]) -> Sequence[SweepEntry]:
        return self.target.run(list(jobs))

    def __repr__(self) -> str:
        return f"_RemoteBackend({self.target!r})"


def _resolve_backend(backend):
    """Adapt the caller's backend object (None = a fresh local session)."""
    if backend is None:
        return _SessionBackend(Session())
    if isinstance(backend, Session):
        return _SessionBackend(backend)
    if hasattr(backend, "topology") and hasattr(backend, "run"):
        return _RemoteBackend(backend, kind="cluster")
    if hasattr(backend, "run"):
        return _RemoteBackend(backend, kind="service")
    raise TunerError(
        f"backend {backend!r} is not a Session, ServiceClient or "
        f"ClusterCoordinator (nor anything with a run(jobs) method)")


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class TrialJournal:
    """Append-only JSONL record of executed trials, keyed by fingerprint.

    Line 1 is a header carrying the owning run's fingerprint; every
    further line is one trial record.  Loading tolerates a torn final
    line (the expected wound of a killed process) but refuses a journal
    whose header names a different run.
    """

    def __init__(self, path, run_fingerprint: str) -> None:
        self.path = Path(path)
        self.run_fingerprint = run_fingerprint
        self.restored: Dict[str, Dict[str, object]] = {}
        if self.path.exists() and self.path.stat().st_size > 0:
            self._load()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._append({"type": "header", "version": JOURNAL_VERSION,
                          "run": run_fingerprint})

    def _load(self) -> None:
        lines = self.path.read_text(encoding="utf-8").splitlines()
        records = []
        for line in lines:
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue  # torn tail from a killed writer
        if not records or records[0].get("type") != "header":
            raise TunerError(
                f"journal {self.path} has no header line; refusing to "
                f"resume from it (delete it to start fresh)")
        header = records[0]
        if header.get("version") != JOURNAL_VERSION:
            raise TunerError(
                f"journal {self.path} has schema version "
                f"{header.get('version')!r}, expected {JOURNAL_VERSION}")
        if header.get("run") != self.run_fingerprint:
            raise TunerError(
                f"journal {self.path} belongs to run "
                f"{str(header.get('run'))[:12]}..., not this run "
                f"({self.run_fingerprint[:12]}...); same space/objective/"
                f"strategy/benchmarks/machine are required to resume")
        for record in records[1:]:
            if record.get("type") == "trial" and "fingerprint" in record:
                self.restored[record["fingerprint"]] = record

    def _append(self, record: Dict[str, object]) -> None:
        with open(self.path, "a", encoding="utf-8") as stream:
            stream.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")
            stream.flush()

    def append_trial(self, record: Dict[str, object]) -> None:
        """Persist one executed trial (flushed before returning)."""
        self._append(dict(record, type="trial"))


# ----------------------------------------------------------------------
# The run
# ----------------------------------------------------------------------
class TuningRun:
    """One search over a space, executed trial by journaled trial.

    Args:
        space: The candidate space.
        objective: A :class:`~repro.tuner.objective.MultiObjective`, a
            single :class:`~repro.tuner.objective.Objective`, or a CLI
            shorthand string (``"aqv"``, ``"max:..."``).
        strategy: The round planner.
        benchmarks: Registered benchmark names every candidate is
            evaluated on; a candidate's score aggregates (sums) its
            metrics across them.
        machine: Target machine spec for every trial; defaults to
            autosized NISQ.
        backend: A :class:`~repro.api.session.Session`,
            :class:`~repro.service.client.ServiceClient` or
            :class:`~repro.cluster.coordinator.ClusterCoordinator`;
            None builds a fresh serial session.
        journal_path: Append-only JSONL trial journal; pass the same
            path again to resume a killed run without recompiling its
            journaled trials.
        on_trial: Callback fired once per *executed* trial, after the
            record hit the journal.

    Attributes:
        trials_total: Trial evaluations requested across all rounds.
        trials_executed: Trials actually compiled through the backend.
        trials_deduped: Trials served from the in-run fingerprint memo
            (racing re-evaluations whose fingerprints did not change,
            in-round duplicates).
        journal_restored: Trials restored from the journal instead of
            executed — the resume path's "zero repeat compilations".
    """

    def __init__(self, space: SearchSpace,
                 objective: Union[MultiObjective, Objective, str],
                 strategy: SearchStrategy,
                 benchmarks: Sequence[str], *,
                 machine: Optional[MachineSpec] = None,
                 backend=None,
                 journal_path=None,
                 on_trial: Optional[TrialCallback] = None) -> None:
        if isinstance(objective, (Objective, str)):
            objective = MultiObjective(objective)
        if not benchmarks:
            raise TunerError("a TuningRun needs at least one benchmark")
        self.space = space
        self.objective = objective
        self.strategy = strategy
        self.benchmarks = tuple(canonical_benchmark_name(name)
                                for name in benchmarks)
        self.machine = machine or MachineSpec.nisq_autosize()
        self.backend = _resolve_backend(backend)
        self.on_trial = on_trial
        self.journal: Optional[TrialJournal] = None
        if journal_path is not None:
            self.journal = TrialJournal(journal_path, self.run_fingerprint())
        #: Fingerprint -> trial record, seeded from the journal.
        self._memo: Dict[str, Dict[str, object]] = \
            dict(self.journal.restored) if self.journal else {}
        self.trials_total = 0
        self.trials_executed = 0
        self.trials_deduped = 0
        self.journal_restored = len(self._memo)

    # ------------------------------------------------------------------
    def run_descriptor(self) -> Dict[str, object]:
        """Everything that determines the run's outcome, as JSON data.

        Deliberately excludes the backend and journal path: a run is
        the same run — same rounds, same trials, same leaderboard — no
        matter where its jobs compile, so a journal written against a
        local session resumes cleanly against a cluster (and vice
        versa).
        """
        return {
            "space": self.space.describe(),
            "objective": self.objective.describe(),
            "strategy": self.strategy.describe(),
            "benchmarks": list(self.benchmarks),
            "machine": self.machine.to_dict(),
        }

    def run_fingerprint(self) -> str:
        """Stable hex digest identifying this run's configuration."""
        canonical = json.dumps(self.run_descriptor(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    def _trials_for(self, round_: Round) -> List[Trial]:
        """Expand one round into its ordered trial list."""
        trials: List[Trial] = []
        for candidate in round_.candidates:
            config = self.space.config_for(candidate)
            for benchmark in self.benchmarks:
                job = CompileJob(
                    benchmark=benchmark,
                    machine=self.machine,
                    config=config,
                    overrides=tuple(sorted(
                        benchmark_overrides(benchmark, round_.scale)
                        .items())),
                )
                trials.append(Trial(
                    benchmark=benchmark, scale=round_.scale,
                    candidate=dict(candidate), job=job,
                    fingerprint=job.fingerprint()))
        return trials

    def _record(self, trial: Trial, entry: SweepEntry) -> Dict[str, object]:
        """Serialize one executed trial to its journal/memo record."""
        record: Dict[str, object] = {
            "fingerprint": trial.fingerprint,
            "benchmark": trial.benchmark,
            "scale": trial.scale,
            "candidate": dict(trial.candidate),
            "ok": entry.ok,
        }
        if entry.ok:
            record["metrics"] = metric_values(entry.result)
        else:
            record["error"] = entry.error.to_dict()
        return record

    def _execute_round(self, round_: Round) -> List[Trial]:
        """Run one round's fresh trials; returns the round's trial list
        with every fingerprint resolved into the memo (restored or
        fresh)."""
        trials = self._trials_for(round_)
        self.trials_total += len(trials)
        pending: "OrderedDict[str, Trial]" = OrderedDict()
        for trial in trials:
            if trial.fingerprint in self._memo:
                self.trials_deduped += 1
            elif trial.fingerprint not in pending:
                pending[trial.fingerprint] = trial
            else:
                self.trials_deduped += 1
        if pending:
            entries = self.backend.run(
                [trial.job for trial in pending.values()])
            if len(entries) != len(pending):
                raise TunerError(
                    f"backend {self.backend!r} returned {len(entries)} "
                    f"entries for {len(pending)} submitted trial(s)")
            for trial, entry in zip(pending.values(), entries):
                record = self._record(trial, entry)
                self._memo[trial.fingerprint] = record
                self.trials_executed += 1
                if self.journal is not None:
                    self.journal.append_trial(record)
                if self.on_trial is not None:
                    self.on_trial(record)
        return trials

    def _evaluate(self, round_: Round) -> List[CandidateEvaluation]:
        """Execute and score one round, one evaluation per candidate."""
        trials = self._execute_round(round_)
        by_candidate: Dict[str, Dict[str, Dict[str, object]]] = {}
        for trial in trials:
            by_candidate.setdefault(
                candidate_key(trial.candidate), {})[trial.benchmark] = \
                self._memo[trial.fingerprint]
        evaluations: List[CandidateEvaluation] = []
        for candidate in round_.candidates:
            records = by_candidate[candidate_key(candidate)]
            per_benchmark: Dict[str, Dict[str, object]] = {}
            aggregate: Dict[str, float] = {}
            ok = True
            for benchmark in self.benchmarks:
                record = records[benchmark]
                if record["ok"]:
                    metrics = record["metrics"]
                    per_benchmark[benchmark] = {"ok": True,
                                                "metrics": dict(metrics)}
                    for key, value in metrics.items():
                        aggregate[key] = aggregate.get(key, 0) + value
                else:
                    ok = False
                    per_benchmark[benchmark] = {"ok": False,
                                                "error": record["error"]}
            evaluations.append(CandidateEvaluation(
                candidate=dict(candidate),
                round_number=round_.number,
                scale=round_.scale,
                ok=ok,
                score=self.objective.scalarize(aggregate) if ok else None,
                metrics=aggregate if ok else None,
                per_benchmark=per_benchmark,
            ))
        return evaluations

    # ------------------------------------------------------------------
    def run(self) -> TuningReport:
        """Drive the strategy to completion; returns the report.

        Deterministic: with a seeded strategy, the same run
        configuration produces a byte-identical
        :meth:`~repro.tuner.report.TuningReport.to_json` export on any
        backend, and a resumed run converges to the same report as an
        uninterrupted one.
        """
        rounds: List[RoundResult] = []
        round_ = self.strategy.first_round(self.space)
        while round_ is not None:
            if not round_.candidates:
                break
            evaluations = self._evaluate(round_)
            rounds.append(RoundResult(number=round_.number,
                                      scale=round_.scale,
                                      evaluations=evaluations))
            scored = [(evaluation.candidate,
                       evaluation.score if evaluation.score is not None
                       else math.inf)
                      for evaluation in evaluations]
            round_ = self.strategy.next_round(self.space, round_, scored)
        if not rounds:
            raise TunerError("the strategy proposed no candidates to try")
        return TuningReport(
            descriptor=self.run_descriptor(),
            objective=self.objective,
            benchmarks=self.benchmarks,
            rounds=rounds,
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Run execution counters, JSON-compatible."""
        return {
            "backend": self.backend.kind,
            "trials_total": self.trials_total,
            "trials_executed": self.trials_executed,
            "trials_deduped": self.trials_deduped,
            "journal_restored": self.journal_restored,
            "journal_path": (str(self.journal.path)
                             if self.journal else None),
        }

    def __repr__(self) -> str:
        return (f"TuningRun(space={self.space!r}, "
                f"strategy={self.strategy!r}, "
                f"benchmarks={list(self.benchmarks)}, "
                f"backend={self.backend.kind})")
