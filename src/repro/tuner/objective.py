"""Tuning objectives over compilation headline metrics.

An :class:`Objective` names one headline metric of a
:class:`~repro.core.result.CompilationResult` (the columns of every
sweep row — gate count, qubit footprint, active quantum volume, ...)
with a direction and a weight; a :class:`MultiObjective` combines
several.  Two views matter for search:

* **Scalarization** — a single comparable score per candidate (the
  weighted sum of oriented metric values, lower is better), which is
  what racing strategies rank and promote on.
* **Pareto dominance** — for multi-objective runs, the set of
  candidates no other candidate beats on *every* objective; the
  leaderboard flags this front so a user trading gates against qubits
  sees the whole frontier, not just the scalarized winner.

All metric values are integers out of a deterministic compiler, so both
views are exactly reproducible across processes and backends — the
property the tuner's byte-identical leaderboard exports rest on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.exceptions import TunerError
from repro.api.sweep import ROW_METRIC_KEYS
from repro.core.result import CompilationResult

#: Metrics an objective may name: the sweep-row headline columns plus
#: the swap-inclusive total gate count.
TUNER_METRICS: Tuple[str, ...] = tuple(ROW_METRIC_KEYS) + ("total_gates",)

#: Objective directions.
GOALS = ("min", "max")


def metric_values(result: CompilationResult) -> Dict[str, float]:
    """Every tunable metric of one result, as plain numbers.

    Only deterministic metrics appear — wall-clock fields like
    ``compile_seconds`` are deliberately excluded so that scores (and
    the leaderboards built from them) are identical no matter where or
    how fast the trial compiled.
    """
    summary = result.summary()
    values = {key: summary[key] for key in ROW_METRIC_KEYS}
    values["total_gates"] = result.total_gate_count
    return values


@dataclass(frozen=True)
class Objective:
    """One direction over one headline metric.

    Attributes:
        metric: A :data:`TUNER_METRICS` name, e.g. ``"aqv"``.
        goal: ``"min"`` or ``"max"``.
        weight: Relative weight in the scalarized score; must be > 0.
    """

    metric: str
    goal: str = "min"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.metric not in TUNER_METRICS:
            raise TunerError(
                f"unknown objective metric {self.metric!r}; choose from "
                f"{list(TUNER_METRICS)}")
        if self.goal not in GOALS:
            raise TunerError(
                f"objective goal must be 'min' or 'max', got {self.goal!r}")
        if not self.weight > 0:
            raise TunerError(
                f"objective weight must be > 0, got {self.weight}")

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "Objective":
        """Parse the CLI shorthand ``[min:|max:]metric[*weight]``.

        Examples: ``"aqv"``, ``"max:aqv"``, ``"gates*2"``,
        ``"min:qubits*0.5"``.
        """
        text = spec.strip()
        goal = "min"
        if ":" in text:
            goal, _, text = text.partition(":")
            goal = goal.strip().lower()
        weight = 1.0
        if "*" in text:
            text, _, raw = text.partition("*")
            try:
                weight = float(raw)
            except ValueError:
                raise TunerError(
                    f"objective spec {spec!r} has a non-numeric weight "
                    f"{raw!r}") from None
        return cls(metric=text.strip(), goal=goal, weight=weight)

    def oriented(self, value: float) -> float:
        """The value as a cost (lower is better under either goal)."""
        return value if self.goal == "min" else -value

    def describe(self) -> Dict[str, object]:
        """JSON-compatible description (part of the run fingerprint)."""
        return {"metric": self.metric, "goal": self.goal,
                "weight": self.weight}

    def __str__(self) -> str:
        suffix = "" if self.weight == 1.0 else f"*{self.weight:g}"
        return f"{self.goal}:{self.metric}{suffix}"


class MultiObjective:
    """An ordered set of objectives with scalarization and dominance.

    Args:
        objectives: At least one :class:`Objective` (or a CLI shorthand
            string each, parsed through :meth:`Objective.parse`); no
            two may name the same metric.
    """

    def __init__(self, *objectives) -> None:
        parsed: List[Objective] = []
        for objective in objectives:
            if isinstance(objective, str):
                objective = Objective.parse(objective)
            parsed.append(objective)
        if not parsed:
            raise TunerError("a MultiObjective needs at least one objective")
        metrics = [objective.metric for objective in parsed]
        if len(set(metrics)) != len(metrics):
            raise TunerError(
                f"objectives repeat a metric: {metrics}")
        self.objectives: Tuple[Objective, ...] = tuple(parsed)

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> Tuple[str, ...]:
        """The metric names, in objective order."""
        return tuple(objective.metric for objective in self.objectives)

    def scalarize(self, values: Mapping[str, float]) -> float:
        """Weighted sum of oriented metric values; lower is better.

        Args:
            values: Metric name -> value, covering every objective
                metric (extra keys are ignored) — the shape
                :func:`metric_values` returns.
        """
        total = 0.0
        for objective in self.objectives:
            try:
                value = values[objective.metric]
            except KeyError:
                raise TunerError(
                    f"metrics are missing objective metric "
                    f"{objective.metric!r}: {sorted(values)}") from None
            total += objective.weight * objective.oriented(value)
        return total

    def score_result(self, result: CompilationResult) -> float:
        """Scalarized score of one compilation result."""
        return self.scalarize(metric_values(result))

    # ------------------------------------------------------------------
    def dominates(self, first: Mapping[str, float],
                  second: Mapping[str, float]) -> bool:
        """True when ``first`` is at least as good on every objective
        and strictly better on at least one (weights play no part)."""
        better_somewhere = False
        for objective in self.objectives:
            a = objective.oriented(first[objective.metric])
            b = objective.oriented(second[objective.metric])
            if a > b:
                return False
            if a < b:
                better_somewhere = True
        return better_somewhere

    def pareto_front(self, points: Sequence[Mapping[str, float]]
                     ) -> List[bool]:
        """Non-domination mask over ``points`` (True = on the front).

        Duplicated metric vectors are all on the front (they do not
        dominate each other), matching the intuition that two configs
        with identical metrics are equally worth reporting.
        """
        mask: List[bool] = []
        for index, point in enumerate(points):
            dominated = any(
                self.dominates(other, point)
                for position, other in enumerate(points) if position != index)
            mask.append(not dominated)
        return mask

    # ------------------------------------------------------------------
    def describe(self) -> List[Dict[str, object]]:
        """JSON-compatible description (part of the run fingerprint)."""
        return [objective.describe() for objective in self.objectives]

    def __len__(self) -> int:
        return len(self.objectives)

    def __repr__(self) -> str:
        return ("MultiObjective("
                + ", ".join(str(o) for o in self.objectives) + ")")
