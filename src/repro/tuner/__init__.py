"""Search-driven auto-tuning of compiler policies and configuration.

The paper's central observation is that no single ancilla
allocation/reclamation policy wins everywhere — the right choice is
workload-dependent.  This package closes the loop: instead of
hand-picking ``allocation=``/``reclamation=`` names per run, declare a
search space over the policy registries (and any other
:class:`~repro.core.compiler.CompilerConfig` knobs), an objective over
the headline metrics, and let a :class:`TuningRun` find the best
configuration for *your* benchmarks — locally, against one compile
server, or across a whole cluster:

* :mod:`repro.tuner.space` — declarative parameter spaces
  (:class:`Choice` / :class:`IntRange` / :class:`FloatRange`),
  deterministic grid and seeded-sample expansion;
  :meth:`SearchSpace.policy_space` reflects the live policy
  registries.
* :mod:`repro.tuner.objective` — single- and multi-objective scoring
  over :class:`~repro.core.result.CompilationResult` headline metrics
  (qubits, gates, active quantum volume, ...), with weighted
  scalarization and Pareto-front computation.
* :mod:`repro.tuner.strategies` — :class:`GridSearch`,
  seeded :class:`RandomSearch`, and :class:`SuccessiveHalving` racing
  that evaluates candidates at small benchmark scales and promotes
  survivors up the scale ladder.
* :mod:`repro.tuner.runner` — :class:`TuningRun`: trials through a
  pluggable backend (local :class:`~repro.api.session.Session`,
  :class:`~repro.service.client.ServiceClient`, or
  :class:`~repro.cluster.coordinator.ClusterCoordinator`), fingerprint
  deduplication, and an append-only JSONL journal that makes a killed
  run resumable with zero repeat compilations.
* :mod:`repro.tuner.report` — :class:`TuningReport`: ranked
  leaderboard, Pareto flags, and best-config export as a
  :func:`~repro.core.compiler.preset`-compatible dict.

Quick start::

    from repro.api import MachineSpec
    from repro.tuner import (MultiObjective, SearchSpace,
                             SuccessiveHalving, TuningRun)

    run = TuningRun(
        SearchSpace.policy_space(),
        MultiObjective("aqv", "gates"),
        SuccessiveHalving(scales=("quick", "laptop"), seed=7),
        benchmarks=["RD53", "MUL32"],
        machine=MachineSpec.nisq_grid(5, 5),
        journal_path="tune.jsonl",
    )
    report = run.run()
    print(report.table("policy search"))
    best = report.best_config()          # e.g. {"allocation": "laa", ...}

Or from the command line: ``python -m repro.experiments tune RD53 MUL32
--strategy halving --scales quick laptop --objective aqv``.
"""

from repro.tuner.objective import (
    TUNER_METRICS,
    MultiObjective,
    Objective,
    metric_values,
)
from repro.tuner.report import (
    CandidateEvaluation,
    RoundResult,
    TuningReport,
)
from repro.tuner.runner import Trial, TrialJournal, TuningRun
from repro.tuner.space import (
    Choice,
    FloatRange,
    IntRange,
    SearchSpace,
    candidate_key,
    candidate_label,
)
from repro.tuner.strategies import (
    STRATEGIES,
    GridSearch,
    RandomSearch,
    Round,
    SearchStrategy,
    SuccessiveHalving,
)

__all__ = [
    "CandidateEvaluation",
    "Choice",
    "FloatRange",
    "GridSearch",
    "IntRange",
    "MultiObjective",
    "Objective",
    "RandomSearch",
    "Round",
    "RoundResult",
    "STRATEGIES",
    "SearchSpace",
    "SearchStrategy",
    "SuccessiveHalving",
    "TUNER_METRICS",
    "Trial",
    "TrialJournal",
    "TuningReport",
    "TuningRun",
    "candidate_key",
    "candidate_label",
    "metric_values",
]
