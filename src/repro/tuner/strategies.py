"""Search strategies: how a tuning run walks its candidate space.

A strategy is a deterministic round planner: it proposes an initial
:class:`Round` of candidates at some benchmark scale, then — given the
scored outcome of each round — either proposes the next round or
declares the search finished.  The :class:`~repro.tuner.runner.TuningRun`
drives the loop; strategies never execute anything themselves, which is
what keeps a killed run resumable (replaying the same strategy over
journaled scores reproduces the same rounds).

Three strategies ship:

* :class:`GridSearch` — every candidate once, at one scale.
* :class:`RandomSearch` — a seeded random subset of the grid, at one
  scale.
* :class:`SuccessiveHalving` — the racing strategy: evaluate everyone
  at the *cheapest* benchmark scale, promote the best
  ``1/eta`` fraction to the next scale, and repeat up the scale ladder
  (``quick`` → ``laptop`` → ``paper``), so most of the budget is spent
  on configurations that already proved themselves cheaply.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import TunerError
from repro.tuner.space import Candidate, SearchSpace, candidate_key
from repro.workloads.registry import SCALES


@dataclass(frozen=True)
class Round:
    """One planned evaluation round: candidates x a benchmark scale.

    Attributes:
        number: Zero-based round index.
        scale: The benchmark scale every candidate compiles at
            (``"quick"``/``"laptop"``/``"paper"``).
        candidates: The candidates to evaluate, in deterministic order.
    """

    number: int
    scale: str
    candidates: Tuple[Candidate, ...]

    def __len__(self) -> int:
        return len(self.candidates)


#: A scored round outcome: (candidate, scalarized score) pairs aligned
#: with ``Round.candidates``; a failed candidate scores ``math.inf``.
Scored = Sequence[Tuple[Candidate, float]]


def rank_candidates(scored: Scored) -> List[Tuple[Candidate, float]]:
    """Sort scored candidates best-first, deterministically.

    Primary key is the scalarized score (ascending — lower is better),
    ties break on the canonical candidate JSON so equal-scoring
    candidates order identically in every process.
    """
    return sorted(scored,
                  key=lambda pair: (pair[1], candidate_key(pair[0])))


def _check_scale(scale: str) -> str:
    if scale not in SCALES:
        raise TunerError(
            f"unknown benchmark scale {scale!r}; use one of {list(SCALES)}")
    return scale


class SearchStrategy:
    """Interface every strategy implements (see module docstring)."""

    #: Short name used in run descriptors and CLI listings.
    name = "abstract"

    def first_round(self, space: SearchSpace) -> Round:
        """The initial round over ``space``."""
        raise NotImplementedError

    def next_round(self, space: SearchSpace, finished: Round,
                   scored: Scored) -> Optional[Round]:
        """The round after ``finished`` given its scores, or None."""
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        """JSON-compatible description (part of the run fingerprint)."""
        raise NotImplementedError


class GridSearch(SearchStrategy):
    """Exhaustive single-round search: the full grid at one scale."""

    name = "grid"

    def __init__(self, scale: str = "laptop") -> None:
        self.scale = _check_scale(scale)

    def first_round(self, space: SearchSpace) -> Round:
        return Round(0, self.scale, tuple(space.grid()))

    def next_round(self, space: SearchSpace, finished: Round,
                   scored: Scored) -> Optional[Round]:
        return None

    def describe(self) -> Dict[str, object]:
        return {"strategy": self.name, "scale": self.scale}

    def __repr__(self) -> str:
        return f"GridSearch(scale={self.scale!r})"


class RandomSearch(SearchStrategy):
    """Seeded random subset of the grid, evaluated once at one scale."""

    name = "random"

    def __init__(self, trials: int, seed: int = 0,
                 scale: str = "laptop") -> None:
        if trials < 1:
            raise TunerError(f"trials must be >= 1, got {trials}")
        self.trials = trials
        self.seed = seed
        self.scale = _check_scale(scale)

    def first_round(self, space: SearchSpace) -> Round:
        return Round(0, self.scale,
                     tuple(space.sample(self.trials, seed=self.seed)))

    def next_round(self, space: SearchSpace, finished: Round,
                   scored: Scored) -> Optional[Round]:
        return None

    def describe(self) -> Dict[str, object]:
        return {"strategy": self.name, "trials": self.trials,
                "seed": self.seed, "scale": self.scale}

    def __repr__(self) -> str:
        return (f"RandomSearch(trials={self.trials}, seed={self.seed}, "
                f"scale={self.scale!r})")


class SuccessiveHalving(SearchStrategy):
    """Racing search: promote survivors up the benchmark scale ladder.

    Round ``i`` evaluates its candidates at ``scales[i]``; the best
    ``ceil(n / eta)`` (by scalarized score, deterministic tie-break)
    advance to ``scales[i + 1]``.  Candidates whose trials failed
    (score ``inf``) are never promoted.  With ``trials`` set, the
    opening round is a seeded sample of the grid instead of the full
    grid — the usual racing setup for large spaces.

    Args:
        scales: The scale ladder, cheapest first; at least one, each a
            registered benchmark scale.
        eta: Halving rate; survivors per round = ``ceil(n / eta)``.
        trials: Opening-round sample size (None = the full grid).
        seed: Seed for the opening-round sample.
        min_survivors: Lower bound on survivors while rounds remain.
    """

    name = "halving"

    def __init__(self, scales: Sequence[str] = ("quick", "laptop"),
                 eta: float = 2.0, trials: Optional[int] = None,
                 seed: int = 0, min_survivors: int = 1) -> None:
        if not scales:
            raise TunerError("SuccessiveHalving needs at least one scale")
        self.scales = tuple(_check_scale(scale) for scale in scales)
        if not eta > 1:
            raise TunerError(f"eta must be > 1, got {eta}")
        if trials is not None and trials < 1:
            raise TunerError(f"trials must be >= 1, got {trials}")
        if min_survivors < 1:
            raise TunerError(
                f"min_survivors must be >= 1, got {min_survivors}")
        self.eta = eta
        self.trials = trials
        self.seed = seed
        self.min_survivors = min_survivors

    # ------------------------------------------------------------------
    def first_round(self, space: SearchSpace) -> Round:
        if self.trials is None:
            candidates = space.grid()
        else:
            candidates = space.sample(self.trials, seed=self.seed)
        return Round(0, self.scales[0], tuple(candidates))

    def next_round(self, space: SearchSpace, finished: Round,
                   scored: Scored) -> Optional[Round]:
        if finished.number + 1 >= len(self.scales):
            return None
        viable = [(candidate, score) for candidate, score in scored
                  if math.isfinite(score)]
        if not viable:
            return None  # everyone failed; nothing to promote
        keep = max(self.min_survivors,
                   math.ceil(len(scored) / self.eta))
        survivors = [candidate for candidate, _
                     in rank_candidates(viable)[:keep]]
        return Round(finished.number + 1, self.scales[finished.number + 1],
                     tuple(survivors))

    def describe(self) -> Dict[str, object]:
        return {"strategy": self.name, "scales": list(self.scales),
                "eta": self.eta, "trials": self.trials, "seed": self.seed,
                "min_survivors": self.min_survivors}

    def __repr__(self) -> str:
        return (f"SuccessiveHalving(scales={list(self.scales)}, "
                f"eta={self.eta:g}, trials={self.trials}, "
                f"seed={self.seed})")


#: CLI strategy name -> constructor; see ``python -m repro.experiments
#: tune --strategy``.
STRATEGIES = {
    GridSearch.name: GridSearch,
    RandomSearch.name: RandomSearch,
    SuccessiveHalving.name: SuccessiveHalving,
}
